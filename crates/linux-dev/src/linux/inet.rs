//! A Linux 2.0-style mini TCP/IP stack, in donor idiom, operating
//! directly on [`SkBuff`]s.
//!
//! This is the "Linux" baseline of the paper's Table 1/2 experiments: a
//! monolithic kernel path where the protocol code and the drivers share
//! the `sk_buff` representation, so no cross-representation conversion
//! ever happens.  It is deliberately simpler than the FreeBSD component
//! (fixed RTO, go-back-N retransmission, no congestion control) —
//! consistent with the paper's observation that the BSD protocols were
//! "generally considered to have much more mature network protocols".

// Donor idiom: kernel entry points report failure the way Linux 2.0's
// `int` returns do — success or a bare error, with no error taxonomy.
// The COM socket glue translates to `oskit_com::Error` at the boundary.
#![allow(clippy::result_unit_err)]

use super::netdevice::{eth_p, NetDevice, ETH_HLEN};
use super::sched::WaitQueue;
use super::skbuff::SkBuff;
use oskit_osenv::{OsEnv, TimerHandle};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::{Arc, Weak};

/// Fixed MSS (Ethernet MTU minus IP+TCP headers).
pub const MSS: usize = 1460;
/// Send buffer limit.
pub const SNDBUF: usize = 128 * 1024;
/// Receive buffer limit (advertised window ceiling).
pub const RCVBUF: usize = 128 * 1024;
/// Fixed retransmission timeout (ns).
pub const RTO_NS: u64 = 200_000_000;

/// The Internet checksum (RFC 1071).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// TCP connection states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open.
    Listen,
    /// Active open sent.
    SynSent,
    /// SYN received on a listener child.
    SynRecv,
    /// Data flows.
    Established,
    /// We closed first.
    FinWait1,
    /// Our FIN acked.
    FinWait2,
    /// Peer closed first.
    CloseWait,
    /// We closed after the peer.
    LastAck,
    /// Both closed; brief linger.
    TimeWait,
}

/// TCP header flags.
mod tf {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

struct TcpPcb {
    state: TcpState,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
    /// Oldest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Peer's advertised window.
    snd_wnd: u32,
    /// Next expected receive sequence.
    rcv_nxt: u32,
    /// Bytes sent but not acknowledged (from `snd_una`).
    unacked: VecDeque<u8>,
    /// Bytes queued but not yet sent.
    pending: VecDeque<u8>,
    /// Received in-order data awaiting the application.
    recvq: VecDeque<u8>,
    /// Peer sent FIN and we consumed all data.
    peer_closed: bool,
    /// Time (ns) of last retransmission-relevant event.
    rto_deadline: u64,
    /// Sockets accepted but not yet taken.
    accept_queue: VecDeque<Arc<LinuxSock>>,
    backlog: usize,
}

/// A Linux-style TCP socket.
pub struct LinuxSock {
    inet: Weak<LinuxInet>,
    pcb: Mutex<TcpPcb>,
    /// Wakes readers.
    rx_wq: WaitQueue,
    /// Wakes writers.
    tx_wq: WaitQueue,
    /// Wakes connect/accept.
    conn_wq: WaitQueue,
}

impl LinuxSock {
    fn new(inet: &Arc<LinuxInet>) -> Arc<LinuxSock> {
        Arc::new(LinuxSock {
            inet: Arc::downgrade(inet),
            pcb: Mutex::new(TcpPcb {
                state: TcpState::Closed,
                local: (Ipv4Addr::UNSPECIFIED, 0),
                remote: (Ipv4Addr::UNSPECIFIED, 0),
                snd_una: 0,
                snd_nxt: 0,
                snd_wnd: RCVBUF as u32,
                rcv_nxt: 0,
                unacked: VecDeque::new(),
                pending: VecDeque::new(),
                recvq: VecDeque::new(),
                peer_closed: false,
                rto_deadline: u64::MAX,
                accept_queue: VecDeque::new(),
                backlog: 0,
            }),
            rx_wq: WaitQueue::new(),
            tx_wq: WaitQueue::new(),
            conn_wq: WaitQueue::new(),
        })
    }

    fn inet(&self) -> Arc<LinuxInet> {
        self.inet.upgrade().expect("stack gone")
    }

    /// Current state (diagnostics).
    pub fn state(&self) -> TcpState {
        self.pcb.lock().state
    }

    /// Local (addr, port).
    pub fn local_addr(&self) -> (Ipv4Addr, u16) {
        self.pcb.lock().local
    }

    /// Peer (addr, port).
    pub fn peer_addr(&self) -> (Ipv4Addr, u16) {
        self.pcb.lock().remote
    }

    /// Whether a read or accept would complete without blocking.
    pub fn readable(&self) -> bool {
        let pcb = self.pcb.lock();
        !pcb.recvq.is_empty() || pcb.peer_closed || !pcb.accept_queue.is_empty()
    }

    /// Binds the local port.
    pub fn bind(&self, port: u16) -> Result<(), ()> {
        let inet = self.inet();
        let mut ports = inet.bound.lock();
        if !ports.insert(port) {
            return Err(());
        }
        self.pcb.lock().local = (inet.addr(), port);
        Ok(())
    }

    /// Passive open.
    pub fn listen(self: &Arc<Self>, backlog: usize) -> Result<(), ()> {
        let inet = self.inet();
        let mut pcb = self.pcb.lock();
        if pcb.local.1 == 0 {
            return Err(());
        }
        pcb.state = TcpState::Listen;
        pcb.backlog = backlog.max(1);
        inet
            .listeners
            .lock()
            .insert(pcb.local.1, Arc::clone(self));
        Ok(())
    }

    /// Active open; blocks until established or reset.
    pub fn connect(self: &Arc<Self>, dst: Ipv4Addr, port: u16) -> Result<(), ()> {
        let inet = self.inet();
        {
            let mut pcb = self.pcb.lock();
            if pcb.local.1 == 0 {
                pcb.local = (inet.addr(), inet.alloc_port());
            }
            pcb.remote = (dst, port);
            pcb.state = TcpState::SynSent;
            pcb.snd_una = 1000; // Fixed ISS: deterministic simulation.
            pcb.snd_nxt = 1000;
            inet.conns.lock().insert(
                (pcb.local.1, dst, port),
                Arc::clone(self),
            );
        }
        self.send_segment(tf::SYN, &[], true);
        loop {
            {
                let pcb = self.pcb.lock();
                match pcb.state {
                    TcpState::Established => return Ok(()),
                    TcpState::Closed => return Err(()),
                    _ => {}
                }
            }
            self.conn_wq.sleep_on(&self.inet().env);
        }
    }

    /// Accepts one connection; blocks until available.
    pub fn accept(&self) -> Result<Arc<LinuxSock>, ()> {
        loop {
            {
                let mut pcb = self.pcb.lock();
                if pcb.state != TcpState::Listen {
                    return Err(());
                }
                if let Some(child) = pcb.accept_queue.pop_front() {
                    return Ok(child);
                }
            }
            self.conn_wq.sleep_on(&self.inet().env);
        }
    }

    /// Sends data; blocks while the send buffer is full.
    pub fn send(&self, buf: &[u8]) -> Result<usize, ()> {
        let mut written = 0;
        while written < buf.len() {
            {
                let mut pcb = self.pcb.lock();
                match pcb.state {
                    TcpState::Established | TcpState::CloseWait => {}
                    _ => return if written > 0 { Ok(written) } else { Err(()) },
                }
                let space = SNDBUF.saturating_sub(pcb.unacked.len() + pcb.pending.len());
                if space > 0 {
                    let n = space.min(buf.len() - written);
                    // memcpy_fromfs: the user→kernel copy.
                    self.inet()
                        .env
                        .machine
                        .charge_copy_at(oskit_machine::boundary!("linux-dev", "sockbuf"), n);
                    pcb.pending.extend(&buf[written..written + n]);
                    written += n;
                    drop(pcb);
                    self.push_output();
                    continue;
                }
            }
            self.tx_wq.sleep_on(&self.inet().env);
        }
        Ok(written)
    }

    /// Receives data; blocks until at least one byte or end-of-stream.
    pub fn recv(&self, buf: &mut [u8]) -> Result<usize, ()> {
        loop {
            {
                let mut pcb = self.pcb.lock();
                if !pcb.recvq.is_empty() {
                    let n = buf.len().min(pcb.recvq.len());
                    for b in buf.iter_mut().take(n) {
                        *b = pcb.recvq.pop_front().unwrap();
                    }
                    let queued = pcb.recvq.len();
                    drop(pcb);
                    // memcpy_tofs: the kernel→user copy.
                    self.inet()
                        .env
                        .machine
                        .charge_copy_at(oskit_machine::boundary!("linux-dev", "sockbuf"), n);
                    // Window update only when it reopens substantially.
                    if n >= 2 * MSS && queued < RCVBUF / 2 {
                        self.send_segment(tf::ACK, &[], false);
                    }
                    return Ok(n);
                }
                if pcb.peer_closed || pcb.state == TcpState::Closed {
                    return Ok(0);
                }
            }
            self.rx_wq.sleep_on(&self.inet().env);
        }
    }

    /// Closes the send side (FIN), first draining queued data so the FIN
    /// carries the correct sequence number.
    pub fn close(&self) {
        loop {
            {
                let pcb = self.pcb.lock();
                let draining = matches!(
                    pcb.state,
                    TcpState::Established | TcpState::CloseWait
                );
                if !draining || pcb.pending.is_empty() {
                    break;
                }
            }
            self.tx_wq.sleep_on(&self.inet().env);
        }
        let send_fin = {
            let mut pcb = self.pcb.lock();
            match pcb.state {
                TcpState::Established => {
                    pcb.state = TcpState::FinWait1;
                    true
                }
                TcpState::CloseWait => {
                    pcb.state = TcpState::LastAck;
                    true
                }
                _ => {
                    pcb.state = TcpState::Closed;
                    false
                }
            }
        };
        if send_fin {
            // Flush pending data first, then FIN.
            self.push_output();
            self.send_segment(tf::FIN | tf::ACK, &[], true);
        }
    }

    /// Moves pending bytes into flight, respecting peer window.
    fn push_output(&self) {
        loop {
            let (chunk, _seq) = {
                let mut pcb = self.pcb.lock();
                if !matches!(
                    pcb.state,
                    TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
                ) {
                    return;
                }
                let in_flight = pcb.snd_nxt.wrapping_sub(pcb.snd_una);
                let window_left = pcb.snd_wnd.saturating_sub(in_flight) as usize;
                let n = pcb.pending.len().min(MSS).min(window_left);
                if n == 0 {
                    return;
                }
                let chunk: Vec<u8> = pcb.pending.drain(..n).collect();
                pcb.unacked.extend(chunk.iter());
                let seq = pcb.snd_nxt;
                pcb.snd_nxt = pcb.snd_nxt.wrapping_add(n as u32);
                (chunk, seq)
            };
            self.send_segment_at(tf::ACK | tf::PSH, &chunk, _seq, true);
        }
    }

    /// Sends a segment at `snd_nxt` (advancing for SYN/FIN when `arm_rto`).
    fn send_segment(&self, flags: u8, payload: &[u8], arm_rto: bool) {
        let seq = {
            let mut pcb = self.pcb.lock();
            let seq = pcb.snd_nxt;
            if flags & (tf::SYN | tf::FIN) != 0 {
                pcb.snd_nxt = pcb.snd_nxt.wrapping_add(1);
            }
            seq
        };
        self.send_segment_at(flags, payload, seq, arm_rto);
    }

    fn send_segment_at(&self, flags: u8, payload: &[u8], seq: u32, arm_rto: bool) {
        let inet = self.inet();
        let (local, remote, ack, wnd) = {
            let mut pcb = self.pcb.lock();
            if arm_rto {
                pcb.rto_deadline = inet.env.now() + RTO_NS;
            }
            let wnd = RCVBUF.saturating_sub(pcb.recvq.len()).min(0xFFFF) as u16;
            (pcb.local, pcb.remote, pcb.rcv_nxt, wnd)
        };
        inet.tcp_output(local, remote, seq, ack, flags, wnd, payload);
    }

    /// Retransmission tick: go-back-N from `snd_una`.
    fn rto_tick(&self, now: u64) {
        let (resend, seq) = {
            let mut pcb = self.pcb.lock();
            if now < pcb.rto_deadline {
                return;
            }
            match pcb.state {
                TcpState::SynSent | TcpState::SynRecv => {
                    // Re-send SYN (or SYN|ACK).
                    pcb.rto_deadline = now + RTO_NS;
                    let flags = if pcb.state == TcpState::SynSent {
                        tf::SYN
                    } else {
                        tf::SYN | tf::ACK
                    };
                    let seq = pcb.snd_una;
                    drop(pcb);
                    self.send_segment_at(flags, &[], seq, false);
                    return;
                }
                _ => {}
            }
            if pcb.unacked.is_empty() {
                pcb.rto_deadline = u64::MAX;
                return;
            }
            pcb.rto_deadline = now + RTO_NS;
            let n = pcb.unacked.len().min(MSS);
            let chunk: Vec<u8> = pcb.unacked.iter().take(n).copied().collect();
            (chunk, pcb.snd_una)
        };
        self.send_segment_at(tf::ACK | tf::PSH, &resend, seq, false);
    }

    /// TCP input for this connection (interrupt level).
    #[allow(clippy::too_many_arguments)]
    fn input(
        self: &Arc<Self>,
        seq: u32,
        ack: u32,
        flags: u8,
        wnd: u16,
        payload: &[u8],
        src: (Ipv4Addr, u16),
    ) {
        let mut wake_rx = false;
        let mut wake_tx = false;
        let mut wake_conn = false;
        let mut send_ack = false;
        let mut child_to_announce = None;
        {
            let mut pcb = self.pcb.lock();
            if flags & tf::RST != 0 {
                pcb.state = TcpState::Closed;
                drop(pcb);
                self.rx_wq.wake_up();
                self.tx_wq.wake_up();
                self.conn_wq.wake_up();
                return;
            }
            match pcb.state {
                TcpState::Listen if flags & tf::SYN != 0 && pcb.accept_queue.len() < pcb.backlog => {
                    // Spawn a child in SYN_RECV.
                    let inet = self.inet();
                    let child = LinuxSock::new(&inet);
                    {
                        let mut cp = child.pcb.lock();
                        cp.state = TcpState::SynRecv;
                        cp.local = pcb.local;
                        cp.remote = src;
                        cp.rcv_nxt = seq.wrapping_add(1);
                        cp.snd_una = 2000;
                        cp.snd_nxt = 2000;
                        cp.snd_wnd = u32::from(wnd);
                    }
                    inet.conns.lock().insert(
                        (pcb.local.1, src.0, src.1),
                        Arc::clone(&child),
                    );
                    child_to_announce = Some(child);
                }
                TcpState::SynSent if flags & tf::SYN != 0 && flags & tf::ACK != 0 => {
                    pcb.rcv_nxt = seq.wrapping_add(1);
                    pcb.snd_una = ack;
                    pcb.snd_wnd = u32::from(wnd);
                    pcb.state = TcpState::Established;
                    pcb.rto_deadline = u64::MAX;
                    send_ack = true;
                    wake_conn = true;
                }
                TcpState::SynRecv if flags & tf::ACK != 0 && ack == pcb.snd_nxt => {
                    pcb.state = TcpState::Established;
                    pcb.rto_deadline = u64::MAX;
                    // Parent hears about us below (already queued).
                }
                _ => {}
            }
            // ACK processing (go-back-N: cumulative only).
            if flags & tf::ACK != 0
                && matches!(
                    pcb.state,
                    TcpState::Established
                        | TcpState::FinWait1
                        | TcpState::FinWait2
                        | TcpState::CloseWait
                        | TcpState::LastAck
                )
            {
                let acked = ack.wrapping_sub(pcb.snd_una);
                let outstanding = pcb.snd_nxt.wrapping_sub(pcb.snd_una);
                if acked > 0 && acked <= outstanding {
                    let data_acked = (acked as usize).min(pcb.unacked.len());
                    pcb.unacked.drain(..data_acked);
                    pcb.snd_una = ack;
                    pcb.rto_deadline = if pcb.unacked.is_empty() {
                        u64::MAX
                    } else {
                        self.inet().env.now() + RTO_NS
                    };
                    wake_tx = true;
                    if pcb.state == TcpState::FinWait1 && pcb.snd_una == pcb.snd_nxt {
                        pcb.state = TcpState::FinWait2;
                    }
                    if pcb.state == TcpState::LastAck && pcb.snd_una == pcb.snd_nxt {
                        pcb.state = TcpState::Closed;
                    }
                }
                pcb.snd_wnd = u32::from(wnd);
            }
            // In-order data (anything else is dropped; go-back-N resends).
            if !payload.is_empty()
                && matches!(
                    pcb.state,
                    TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
                )
            {
                if seq == pcb.rcv_nxt && pcb.recvq.len() + payload.len() <= RCVBUF {
                    pcb.recvq.extend(payload);
                    pcb.rcv_nxt = pcb.rcv_nxt.wrapping_add(payload.len() as u32);
                    wake_rx = true;
                }
                send_ack = true;
            }
            // FIN (which may ride on the final data segment: its sequence
            // position is `seq + len`).
            let fin_seq = seq.wrapping_add(payload.len() as u32);
            if flags & tf::FIN != 0 && fin_seq == pcb.rcv_nxt && !pcb.peer_closed {
                pcb.rcv_nxt = pcb.rcv_nxt.wrapping_add(1);
                match pcb.state {
                    TcpState::Established => pcb.state = TcpState::CloseWait,
                    TcpState::FinWait1 => pcb.state = TcpState::TimeWait,
                    TcpState::FinWait2 => pcb.state = TcpState::TimeWait,
                    _ => {}
                }
                pcb.peer_closed = true;
                send_ack = true;
                wake_rx = true;
            }
        }
        if let Some(child) = child_to_announce {
            child.send_segment(tf::SYN | tf::ACK, &[], true);
            self.pcb.lock().accept_queue.push_back(child);
            wake_conn = true;
        }
        if send_ack {
            self.send_segment(tf::ACK, &[], false);
        }
        if wake_rx {
            self.rx_wq.wake_up();
        }
        if wake_tx {
            self.tx_wq.wake_up();
            // More pending data may now fit the window.
            self.push_output();
        }
        if wake_conn {
            self.conn_wq.wake_up();
        }
    }
}

/// The per-interface stack instance.
pub struct LinuxInet {
    /// The environment (time, sleep, interrupts).
    pub env: Arc<OsEnv>,
    dev: Arc<NetDevice>,
    ip: Ipv4Addr,
    mask: Ipv4Addr,
    arp_cache: Mutex<HashMap<Ipv4Addr, [u8; 6]>>,
    arp_pending: Mutex<HashMap<Ipv4Addr, Vec<Vec<u8>>>>,
    listeners: Mutex<HashMap<u16, Arc<LinuxSock>>>,
    conns: Mutex<HashMap<(u16, Ipv4Addr, u16), Arc<LinuxSock>>>,
    bound: Mutex<std::collections::HashSet<u16>>,
    next_port: Mutex<u16>,
    ip_ident: Mutex<u16>,
    _timer: Mutex<Option<TimerHandle>>,
}

impl LinuxInet {
    /// Attaches the stack to a device and configures the address
    /// (`ifconfig`).
    pub fn attach(
        env: &Arc<OsEnv>,
        dev: &Arc<NetDevice>,
        ip: Ipv4Addr,
        mask: Ipv4Addr,
    ) -> Arc<LinuxInet> {
        let inet = Arc::new(LinuxInet {
            env: Arc::clone(env),
            dev: Arc::clone(dev),
            ip,
            mask,
            arp_cache: Mutex::new(HashMap::new()),
            arp_pending: Mutex::new(HashMap::new()),
            listeners: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            bound: Mutex::new(std::collections::HashSet::new()),
            next_port: Mutex::new(32768),
            ip_ident: Mutex::new(1),
            _timer: Mutex::new(None),
        });
        let weak = Arc::downgrade(&inet);
        dev.set_rx_handler(move |skb| {
            if let Some(inet) = weak.upgrade() {
                inet.rx(skb);
            }
        });
        dev.open();
        // The retransmit tick (the donor's 200 ms timer).
        let weak = Arc::downgrade(&inet);
        let handle = env.timer_register(50_000_000, move || {
            if let Some(inet) = weak.upgrade() {
                let now = inet.env.now();
                let conns: Vec<_> = inet.conns.lock().values().cloned().collect();
                for c in conns {
                    c.rto_tick(now);
                }
            }
        });
        *inet._timer.lock() = Some(handle);
        inet
    }

    /// The configured address.
    pub fn addr(&self) -> Ipv4Addr {
        self.ip
    }

    /// Creates an unbound TCP socket.
    pub fn socket(self: &Arc<Self>) -> Arc<LinuxSock> {
        LinuxSock::new(self)
    }

    fn alloc_port(&self) -> u16 {
        let mut p = self.next_port.lock();
        let mut bound = self.bound.lock();
        loop {
            let port = *p;
            *p = p.wrapping_add(1).max(32768);
            if bound.insert(port) {
                return port;
            }
        }
    }

    // --- Receive path (interrupt level) ---

    fn rx(self: &Arc<Self>, mut skb: SkBuff) {
        self.env.machine.charge_layer();
        match skb.protocol {
            eth_p::ARP => {
                skb.pull(ETH_HLEN);
                self.arp_input(&skb.to_vec());
            }
            eth_p::IP => {
                skb.pull(ETH_HLEN);
                self.ip_input(&skb);
            }
            _ => {}
        }
    }

    fn arp_input(self: &Arc<Self>, p: &[u8]) {
        if p.len() < 28 {
            return;
        }
        let op = u16::from_be_bytes([p[6], p[7]]);
        let sha: [u8; 6] = p[8..14].try_into().unwrap();
        let spa = Ipv4Addr::new(p[14], p[15], p[16], p[17]);
        let tpa = Ipv4Addr::new(p[24], p[25], p[26], p[27]);
        // Learn the sender unconditionally.
        self.arp_cache.lock().insert(spa, sha);
        if op == 1 && tpa == self.ip {
            // Request for us: reply.
            let mut reply = vec![0u8; 28];
            reply[0..2].copy_from_slice(&1u16.to_be_bytes()); // Ethernet.
            reply[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
            reply[4] = 6;
            reply[5] = 4;
            reply[6..8].copy_from_slice(&2u16.to_be_bytes()); // Reply.
            reply[8..14].copy_from_slice(&self.dev.dev_addr);
            reply[14..18].copy_from_slice(&self.ip.octets());
            reply[18..24].copy_from_slice(&sha);
            reply[24..28].copy_from_slice(&spa.octets());
            self.dev.xmit_ether(sha, eth_p::ARP, &reply);
        }
        // Drain anything queued on this resolution.
        let queued = self.arp_pending.lock().remove(&spa);
        if let Some(packets) = queued {
            for ip_packet in packets {
                self.dev.xmit_ether(sha, eth_p::IP, &ip_packet);
            }
        }
    }

    fn ip_input(self: &Arc<Self>, skb: &SkBuff) {
        skb.with_data(|p| {
            if p.len() < 20 || p[0] >> 4 != 4 {
                return;
            }
            let ihl = usize::from(p[0] & 0xF) * 4;
            let total = usize::from(u16::from_be_bytes([p[2], p[3]]));
            if total > p.len() || ihl < 20 || ihl > total {
                return;
            }
            self.env.machine.charge_checksum(ihl);
            if checksum(&p[..ihl]) != 0 {
                return;
            }
            let proto = p[9];
            let src = Ipv4Addr::new(p[12], p[13], p[14], p[15]);
            let dst = Ipv4Addr::new(p[16], p[17], p[18], p[19]);
            if dst != self.ip {
                return;
            }
            if proto == 6 {
                self.tcp_input(src, &p[ihl..total]);
            }
        });
    }

    fn tcp_input(self: &Arc<Self>, src: Ipv4Addr, seg: &[u8]) {
        if seg.len() < 20 {
            return;
        }
        self.env.machine.charge_layer();
        self.env.machine.charge_checksum(seg.len());
        let sport = u16::from_be_bytes([seg[0], seg[1]]);
        let dport = u16::from_be_bytes([seg[2], seg[3]]);
        let seq = u32::from_be_bytes([seg[4], seg[5], seg[6], seg[7]]);
        let ack = u32::from_be_bytes([seg[8], seg[9], seg[10], seg[11]]);
        let doff = usize::from(seg[12] >> 4) * 4;
        let flags = seg[13];
        let wnd = u16::from_be_bytes([seg[14], seg[15]]);
        if doff < 20 || doff > seg.len() {
            return;
        }
        let payload = &seg[doff..];
        // Established connections first, then listeners.
        let conn = self.conns.lock().get(&(dport, src, sport)).cloned();
        if let Some(sock) = conn {
            sock.input(seq, ack, flags, wnd, payload, (src, sport));
            return;
        }
        let listener = self.listeners.lock().get(&dport).cloned();
        if let Some(sock) = listener {
            sock.input(seq, ack, flags, wnd, payload, (src, sport));
        }
    }

    // --- Transmit path ---

    #[allow(clippy::too_many_arguments)]
    fn tcp_output(
        self: &Arc<Self>,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        seq: u32,
        ack: u32,
        flags: u8,
        wnd: u16,
        payload: &[u8],
    ) {
        self.env.machine.charge_layer();
        let mut seg = vec![0u8; 20 + payload.len()];
        seg[0..2].copy_from_slice(&local.1.to_be_bytes());
        seg[2..4].copy_from_slice(&remote.1.to_be_bytes());
        seg[4..8].copy_from_slice(&seq.to_be_bytes());
        seg[8..12].copy_from_slice(&ack.to_be_bytes());
        seg[12] = 5 << 4;
        seg[13] = flags;
        seg[14..16].copy_from_slice(&wnd.to_be_bytes());
        seg[20..].copy_from_slice(payload);
        // Pseudo-header checksum.
        self.env.machine.charge_checksum(seg.len());
        let mut pseudo = Vec::with_capacity(12 + seg.len());
        pseudo.extend_from_slice(&local.0.octets());
        pseudo.extend_from_slice(&remote.0.octets());
        pseudo.push(0);
        pseudo.push(6);
        pseudo.extend_from_slice(&(seg.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(&seg);
        let csum = checksum(&pseudo);
        seg[16..18].copy_from_slice(&csum.to_be_bytes());
        self.ip_output(remote.0, 6, &seg);
    }

    fn ip_output(self: &Arc<Self>, dst: Ipv4Addr, proto: u8, payload: &[u8]) {
        self.env.machine.charge_layer();
        assert!(payload.len() + 20 <= self.dev.mtu, "no fragmentation support");
        let mut p = vec![0u8; 20 + payload.len()];
        p[0] = 0x45;
        let total = (20 + payload.len()) as u16;
        p[2..4].copy_from_slice(&total.to_be_bytes());
        let ident = {
            let mut id = self.ip_ident.lock();
            *id = id.wrapping_add(1);
            *id
        };
        p[4..6].copy_from_slice(&ident.to_be_bytes());
        p[8] = 64; // TTL.
        p[9] = proto;
        p[12..16].copy_from_slice(&self.ip.octets());
        p[16..20].copy_from_slice(&dst.octets());
        self.env.machine.charge_checksum(20);
        let csum = checksum(&p[..20]);
        p[10..12].copy_from_slice(&csum.to_be_bytes());
        p[20..].copy_from_slice(payload);
        self.route_output(dst, p);
    }

    fn route_output(self: &Arc<Self>, dst: Ipv4Addr, ip_packet: Vec<u8>) {
        let on_link = (u32::from(dst) & u32::from(self.mask))
            == (u32::from(self.ip) & u32::from(self.mask));
        if !on_link {
            return; // No router in the testbed; drop, as the sender would notice.
        }
        let mac = self.arp_cache.lock().get(&dst).copied();
        match mac {
            Some(mac) => self.dev.xmit_ether(mac, eth_p::IP, &ip_packet),
            None => {
                self.arp_pending.lock().entry(dst).or_default().push(ip_packet);
                self.arp_request(dst);
            }
        }
    }

    fn arp_request(&self, dst: Ipv4Addr) {
        let mut req = vec![0u8; 28];
        req[0..2].copy_from_slice(&1u16.to_be_bytes());
        req[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        req[4] = 6;
        req[5] = 4;
        req[6..8].copy_from_slice(&1u16.to_be_bytes());
        req[8..14].copy_from_slice(&self.dev.dev_addr);
        req[14..18].copy_from_slice(&self.ip.octets());
        req[24..28].copy_from_slice(&dst.octets());
        self.dev.xmit_ether([0xFF; 6], eth_p::ARP, &req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_machine::{Machine, Nic, Sim};

    fn testbed() -> (Arc<Sim>, Arc<LinuxInet>, Arc<LinuxInet>) {
        let sim = Sim::new();
        let ma = Machine::new(&sim, "a", 1 << 20);
        let mb = Machine::new(&sim, "b", 1 << 20);
        let na = Nic::new(&ma, [2, 0, 0, 0, 0, 1]);
        let nb = Nic::new(&mb, [2, 0, 0, 0, 0, 2]);
        Nic::connect(&na, &nb);
        let ea = OsEnv::new(&ma);
        let eb = OsEnv::new(&mb);
        let da = NetDevice::new("eth0", &ea, na);
        let db = NetDevice::new("eth0", &eb, nb);
        let ia = LinuxInet::attach(&ea, &da, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(255, 255, 255, 0));
        let ib = LinuxInet::attach(&eb, &db, Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(255, 255, 255, 0));
        ma.irq.enable();
        mb.irq.enable();
        (sim, ia, ib)
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Verifying against a hand-computed value.
        let data = [0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                    0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7];
        assert_eq!(checksum(&data), 0xB861);
        // A packet with its checksum in place sums to zero.
        let mut with = data;
        with[10..12].copy_from_slice(&0xB861u16.to_be_bytes());
        assert_eq!(checksum(&with), 0);
    }

    #[test]
    fn connect_send_recv_close() {
        let (sim, ia, ib) = testbed();
        let server_inet = Arc::clone(&ib);
        sim.spawn("server", move || {
            let ls = server_inet.socket();
            ls.bind(7).unwrap();
            ls.listen(5).unwrap();
            let conn = ls.accept().unwrap();
            let mut total = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = conn.recv(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                total.extend_from_slice(&buf[..n]);
            }
            assert_eq!(total.len(), 100_000);
            assert!(total.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
            conn.close();
        });
        let client_inet = Arc::clone(&ia);
        sim.spawn("client", move || {
            let s = client_inet.socket();
            s.connect(Ipv4Addr::new(10, 0, 0, 2), 7).unwrap();
            let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
            let mut sent = 0;
            while sent < data.len() {
                sent += s.send(&data[sent..]).unwrap();
            }
            s.close();
            // Drain until peer close completes.
            let mut buf = [0u8; 64];
            while s.recv(&mut buf).unwrap() != 0 {}
        });
        sim.run();
    }

    #[test]
    fn connect_refused_by_rst_less_stack_times_out_cleanly() {
        // No listener: our mini stack sends no RST, so the SYN
        // retransmits until we give up via state check; emulate an
        // application timeout by closing from another context.
        let (sim, ia, _ib) = testbed();
        let client_inet = Arc::clone(&ia);
        let sim2 = Arc::clone(&sim);
        sim.spawn("client", move || {
            let s = client_inet.socket();
            let s2 = Arc::clone(&s);
            sim2.at(500_000_000, move || {
                s2.pcb.lock().state = TcpState::Closed;
                s2.conn_wq.wake_up();
            });
            assert!(s.connect(Ipv4Addr::new(10, 0, 0, 9), 7).is_err());
        });
        sim.run();
    }

    #[test]
    fn two_connections_are_demultiplexed() {
        let (sim, ia, ib) = testbed();
        let server_inet = Arc::clone(&ib);
        sim.spawn("server", move || {
            let ls = server_inet.socket();
            ls.bind(80).unwrap();
            ls.listen(5).unwrap();
            for _ in 0..2 {
                let conn = ls.accept().unwrap();
                let server_inet = conn.inet();
                let _ = server_inet;
                let mut buf = [0u8; 16];
                let n = conn.recv(&mut buf).unwrap();
                // Echo back.
                conn.send(&buf[..n]).unwrap();
                conn.close();
            }
        });
        for i in 0..2u8 {
            let client_inet = Arc::clone(&ia);
            sim.spawn(format!("client{i}"), move || {
                let s = client_inet.socket();
                s.connect(Ipv4Addr::new(10, 0, 0, 2), 80).unwrap();
                let msg = [i; 8];
                s.send(&msg).unwrap();
                let mut buf = [0u8; 16];
                let n = s.recv(&mut buf).unwrap();
                assert_eq!(&buf[..n], &msg);
                s.close();
                while s.recv(&mut buf).unwrap() != 0 {}
            });
        }
        sim.run();
    }

    #[test]
    fn bind_conflict_is_rejected() {
        let (_sim, ia, _ib) = testbed();
        let a = ia.socket();
        let b = ia.socket();
        a.bind(1234).unwrap();
        assert!(b.bind(1234).is_err());
    }
}
