//! The "encapsulated donor code": Linux 2.0-style drivers and networking.
//!
//! Everything in this module tree is written in the donor system's idiom
//! (paper §4.7.1 keeps donor code in its own subtree, `linux/src`,
//! mirrored here) and consumes Linux-native services (`current`,
//! `sleep_on`/`wake_up`, `kmalloc`, jiffies) that the glue emulates.

pub mod blkdev;
pub mod inet;
pub mod kmalloc;
pub mod netdevice;
pub mod sched;
pub mod skbuff;
