//! Linux-style `current`, wait queues and jiffies — the donor-environment
//! services the glue must emulate (paper §4.7.5, §4.7.6).
//!
//! "The imported legacy code is generally riddled with code that makes
//! assumptions about processes and often accesses the 'current process'
//! structure directly (e.g., through ... Linux's `current` pointer)."
//!
//! The donor-style code below *uses* these facilities exactly as Linux
//! code would (`current()`, `sleep_on`, `wake_up`); the glue manufactures
//! the processes behind them on demand.

use oskit_osenv::{OsEnv, OsenvSleep};
use parking_lot::Mutex;
use std::sync::Arc;

/// A minimal `struct task_struct`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskStruct {
    /// Process id; glue-manufactured tasks use a synthetic pid.
    pub pid: i32,
    /// Command name.
    pub comm: String,
}

/// The component-wide `current` pointer.
///
/// In Linux this is a per-CPU global; within the encapsulated component it
/// is component-wide state that the glue saves and restores around
/// blocking calls (paper §4.7.5: "the glue code must also intercept these
/// calls and save the `curproc` pointer ... to prevent it from getting
/// trashed by other concurrent activities").
pub struct CurrentPtr {
    task: Mutex<Option<TaskStruct>>,
}

impl Default for CurrentPtr {
    fn default() -> Self {
        Self::new()
    }
}

impl CurrentPtr {
    /// An unset pointer: donor code that runs before the glue sets it
    /// would crash, as in the real system.
    pub fn new() -> CurrentPtr {
        CurrentPtr {
            task: Mutex::new(None),
        }
    }

    /// `current->...`: reads the current task.
    ///
    /// # Panics
    ///
    /// Panics if no task is set — a glue bug, loudly surfaced.
    pub fn current(&self) -> TaskStruct {
        self.task
            .lock()
            .clone()
            .expect("linux code entered without a current task (glue bug)")
    }

    /// Glue: installs `task` and returns the previous value for restore.
    pub fn set(&self, task: Option<TaskStruct>) -> Option<TaskStruct> {
        std::mem::replace(&mut *self.task.lock(), task)
    }

    /// Whether a task is currently installed.
    pub fn is_set(&self) -> bool {
        self.task.lock().is_some()
    }
}

/// A Linux wait queue (`struct wait_queue *`), emulated over the osenv
/// sleep record (§4.7.6): each sleeper gets its own record; `wake_up`
/// signals them all.
pub struct WaitQueue {
    sleepers: Mutex<Vec<OsenvSleep>>,
}

impl Default for WaitQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitQueue {
    /// An empty queue.
    pub fn new() -> WaitQueue {
        WaitQueue {
            sleepers: Mutex::new(Vec::new()),
        }
    }

    /// `sleep_on(&wq)`: blocks the calling process until `wake_up`.
    ///
    /// The caller must not hold spinlocks (i.e. interrupt guards); the
    /// environment enforces that blocking only happens at process level.
    pub fn sleep_on(&self, env: &Arc<OsEnv>) {
        let sl = env.sleep_create();
        self.sleepers.lock().push(sl.clone());
        sl.sleep();
    }

    /// `sleep_on` with a timeout in nanoseconds; returns true if woken,
    /// false on timeout (`interruptible_sleep_on_timeout`).
    pub fn sleep_on_timeout(&self, env: &Arc<OsEnv>, timeout_ns: u64) -> bool {
        let sl = env.sleep_create();
        self.sleepers.lock().push(sl.clone());
        matches!(
            sl.sleep_timeout(timeout_ns),
            oskit_machine::WakeReason::Signaled
        )
    }

    /// `wake_up(&wq)`: wakes every sleeper (callable from interrupt
    /// level).
    pub fn wake_up(&self) {
        for sl in self.sleepers.lock().drain(..) {
            sl.wakeup();
        }
    }

    /// Number of waiting processes.
    pub fn waiting(&self) -> usize {
        self.sleepers.lock().len()
    }
}

/// The `jiffies` clock: 100 Hz ticks derived from the environment clock.
pub fn jiffies(env: &OsEnv) -> u64 {
    env.now() / 10_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_machine::{Machine, Sim};

    fn env() -> (Arc<Sim>, Arc<OsEnv>) {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 1 << 20);
        (sim, OsEnv::new(&m))
    }

    #[test]
    #[should_panic(expected = "without a current task")]
    fn current_without_task_is_a_glue_bug() {
        let c = CurrentPtr::new();
        c.current();
    }

    #[test]
    fn set_and_restore_current() {
        let c = CurrentPtr::new();
        let prev = c.set(Some(TaskStruct {
            pid: -1,
            comm: "glue".into(),
        }));
        assert!(prev.is_none());
        assert_eq!(c.current().comm, "glue");
        let prev = c.set(None);
        assert_eq!(prev.unwrap().pid, -1);
        assert!(!c.is_set());
    }

    #[test]
    fn wake_up_releases_all_sleepers() {
        let (sim, env) = env();
        let wq = Arc::new(WaitQueue::new());
        let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for i in 0..3 {
            let (w, e, d) = (Arc::clone(&wq), Arc::clone(&env), Arc::clone(&done));
            sim.spawn(format!("sleeper{i}"), move || {
                w.sleep_on(&e);
                d.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        let w2 = Arc::clone(&wq);
        let s2 = Arc::clone(&sim);
        sim.spawn("waker", move || {
            // Let the sleepers go to sleep first.
            let e = Arc::new(oskit_machine::SleepRecord::new());
            let _ = e.wait_timeout(&s2, 1_000);
            assert_eq!(w2.waiting(), 3);
            w2.wake_up();
        });
        sim.run();
        assert_eq!(done.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn sleep_timeout_expires() {
        let (sim, env) = env();
        let wq = Arc::new(WaitQueue::new());
        let (w, e) = (Arc::clone(&wq), Arc::clone(&env));
        sim.spawn("t", move || {
            assert!(!w.sleep_on_timeout(&e, 5_000));
        });
        sim.run();
    }

    #[test]
    fn jiffies_track_virtual_time() {
        let (_sim, env) = env();
        assert_eq!(jiffies(&env), 0);
        env.machine.advance(25_000_000); // 25 ms.
        assert_eq!(jiffies(&env), 2);
    }
}
