//! `sk_buff` — the Linux network packet buffer, in donor idiom.
//!
//! This module is "encapsulated legacy code" in the sense of paper §4.7:
//! it keeps Linux 2.0's names and semantics (`alloc_skb`, `skb_reserve`,
//! `skb_put`, `skb_push`, `skb_pull`, the head/data/tail/end layout) so
//! the glue around it has something real to encapsulate.  The one Rust
//! twist is [`SkbStorage::Mapped`]: the "fake skbuff pointing directly to
//! this data" that the glue manufactures when a foreign `bufio` maps
//! contiguously (§4.7.3) — read-only, used only on the transmit hand-off.

use oskit_com::interfaces::blkio::{BufIo, IoFragment, SgBufIo};
use oskit_com::{Error, Result};
use std::sync::Arc;

/// Where an skbuff's bytes live.
pub enum SkbStorage {
    /// The normal case: one contiguous owned buffer.
    Owned(Vec<u8>),
    /// A "fake" skbuff aliasing a foreign mapped buffer (zero copy).
    Mapped(Arc<dyn BufIo>),
    /// A fragment-list "fake" skbuff aliasing a foreign scatter-gather
    /// buffer — the discontiguous analogue of [`SkbStorage::Mapped`],
    /// mirroring Linux's `skb_shinfo->frags` page list.
    SgMapped(Arc<dyn SgBufIo>),
}

/// The Linux packet buffer.
///
/// Layout invariant (as in Linux): `0 <= data <= tail <= end`, with the
/// packet's live bytes in `[data, tail)`.  `skb_reserve` opens headroom,
/// `skb_push`/`skb_pull` move the data edge for header processing, and
/// `skb_put` appends at the tail.
pub struct SkBuff {
    storage: SkbStorage,
    /// Offset of the first live byte.
    data: usize,
    /// Offset one past the last live byte.
    tail: usize,
    /// Total buffer capacity (`end`).
    end: usize,
    /// Receiving/transmitting device index, recorded by drivers.
    pub dev: Option<usize>,
    /// Ethernet protocol id (host order), set by `eth_type_trans`.
    pub protocol: u16,
}

impl SkBuff {
    /// `alloc_skb(size)`: an empty buffer of capacity `size`.
    pub fn alloc(size: usize) -> SkBuff {
        SkBuff {
            storage: SkbStorage::Owned(vec![0; size]),
            data: 0,
            tail: 0,
            end: size,
            dev: None,
            protocol: 0,
        }
    }

    /// Builds an skbuff that owns `bytes` outright (the DMA-filled
    /// receive case: the NIC deposited a complete frame).
    pub fn from_vec(bytes: Vec<u8>) -> SkBuff {
        let len = bytes.len();
        SkBuff {
            storage: SkbStorage::Owned(bytes),
            data: 0,
            tail: len,
            end: len,
            dev: None,
            protocol: 0,
        }
    }

    /// Builds a read-only "fake skbuff" aliasing a mapped foreign buffer
    /// (§4.7.3); `len` is the packet length.
    ///
    /// Fails with [`Error::Inval`] when the buffer holds fewer than `len`
    /// bytes — a too-short bufio must be rejected here, not papered over
    /// by growing `end` past the storage it aliases.
    pub fn fake_mapped(bufio: Arc<dyn BufIo>, len: usize) -> Result<SkBuff> {
        let size = bufio.get_size()? as usize;
        if len > size {
            return Err(Error::Inval);
        }
        Ok(SkBuff {
            storage: SkbStorage::Mapped(bufio),
            data: 0,
            tail: len,
            end: size,
            dev: None,
            protocol: 0,
        })
    }

    /// Builds a read-only fragment-list "fake skbuff" aliasing a foreign
    /// scatter-gather buffer: the `NETIF_F_SG` counterpart of
    /// [`SkBuff::fake_mapped`], with the fragment list standing in for
    /// `skb_shinfo->frags`.
    ///
    /// Construction probes the fragment mapping once (as Linux fills the
    /// frag descriptors when the skb is built): a buffer that cannot
    /// expose its range as local fragments fails with
    /// [`Error::NotImpl`] so the caller can fall back to the
    /// contiguous-map/copy ladder, and a too-short buffer fails with
    /// [`Error::Inval`].
    pub fn fake_sg(sg: Arc<dyn SgBufIo>, len: usize) -> Result<SkBuff> {
        let size = sg.get_size()? as usize;
        if len > size {
            return Err(Error::Inval);
        }
        sg.with_map_fragments(0, len, &mut |_| {})?;
        Ok(SkBuff {
            storage: SkbStorage::SgMapped(sg),
            data: 0,
            tail: len,
            end: size,
            dev: None,
            protocol: 0,
        })
    }

    /// Whether this is a writable, owned skbuff.
    pub fn is_owned(&self) -> bool {
        matches!(self.storage, SkbStorage::Owned(_))
    }

    /// Whether this is a fragment-list (scatter-gather) skbuff, which
    /// only an `NETIF_F_SG`-capable device can transmit.
    pub fn is_sg(&self) -> bool {
        matches!(self.storage, SkbStorage::SgMapped(_))
    }

    /// `skb->len`: live byte count.
    pub fn len(&self) -> usize {
        self.tail - self.data
    }

    /// True when no live bytes are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `skb_headroom()`.
    pub fn headroom(&self) -> usize {
        self.data
    }

    /// `skb_tailroom()`.
    pub fn tailroom(&self) -> usize {
        self.end - self.tail
    }

    /// `skb_reserve(len)`: opens headroom on an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if data is already present (as the kernel's would corrupt).
    pub fn reserve(&mut self, len: usize) {
        assert_eq!(self.len(), 0, "skb_reserve on non-empty skb");
        assert!(self.tail + len <= self.end, "skb_reserve beyond end");
        self.data += len;
        self.tail += len;
    }

    /// `skb_put(len)`: appends `len` bytes of space at the tail, returning
    /// a mutable slice of the new region.
    ///
    /// # Panics
    ///
    /// Panics if the buffer would overrun (`skb_over_panic`).
    pub fn put(&mut self, len: usize) -> &mut [u8] {
        assert!(self.tail + len <= self.end, "skb_over_panic");
        let start = self.tail;
        self.tail += len;
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[start..start + len],
            SkbStorage::Mapped(_) | SkbStorage::SgMapped(_) => panic!("skb_put on mapped skb"),
        }
    }

    /// `skb_push(len)`: prepends `len` bytes (header space), returning the
    /// new front region.
    ///
    /// # Panics
    ///
    /// Panics on headroom underrun (`skb_under_panic`).
    pub fn push(&mut self, len: usize) -> &mut [u8] {
        assert!(self.data >= len, "skb_under_panic");
        self.data -= len;
        let start = self.data;
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[start..start + len],
            SkbStorage::Mapped(_) | SkbStorage::SgMapped(_) => panic!("skb_push on mapped skb"),
        }
    }

    /// `skb_pull(len)`: strips `len` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes are live.
    pub fn pull(&mut self, len: usize) {
        assert!(self.len() >= len, "skb_pull beyond len");
        self.data += len;
    }

    /// `skb_trim(len)`: truncates to `len` live bytes.
    pub fn trim(&mut self, len: usize) {
        assert!(len <= self.len(), "skb_trim grows skb");
        self.tail = self.data + len;
    }

    /// Runs `f` over the live bytes (works for owned and mapped storage —
    /// this is the zero-copy read path the driver transmit uses).
    ///
    /// # Panics
    ///
    /// Panics on a fragment-list skbuff: its bytes are not one contiguous
    /// run — an SG-capable driver must use [`SkBuff::with_frags`].
    pub fn with_data<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        match &self.storage {
            SkbStorage::Owned(v) => f(&v[self.data..self.tail]),
            SkbStorage::Mapped(b) => {
                let mut out = None;
                let mut f = Some(f);
                b.with_map(self.data, self.tail - self.data, &mut |s| {
                    if let Some(f) = f.take() {
                        out = Some(f(s));
                    }
                })
                .expect("mapped skb lost its mapping");
                out.expect("with_map did not call back")
            }
            SkbStorage::SgMapped(_) => panic!("with_data on sg skb"),
        }
    }

    /// Runs `f` over the live bytes as a fragment list — the
    /// `skb_shinfo->frags` walk an SG driver performs.  Owned and
    /// contiguous-mapped skbuffs present a single fragment, so a driver
    /// written against this interface handles every storage kind.
    pub fn with_frags<R>(&self, f: impl FnOnce(&[IoFragment<'_>]) -> R) -> R {
        match &self.storage {
            SkbStorage::Owned(v) => f(&[IoFragment {
                data: &v[self.data..self.tail],
            }]),
            SkbStorage::Mapped(_) => self.with_data(|d| f(&[IoFragment { data: d }])),
            SkbStorage::SgMapped(b) => {
                let mut out = None;
                let mut f = Some(f);
                b.with_map_fragments(self.data, self.tail - self.data, &mut |frags| {
                    if let Some(f) = f.take() {
                        out = Some(f(frags));
                    }
                })
                .expect("sg skb lost its mapping");
                out.expect("with_map_fragments did not call back")
            }
        }
    }

    /// Mutable access to the live bytes (owned storage only).
    pub fn data_mut(&mut self) -> &mut [u8] {
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[self.data..self.tail],
            SkbStorage::Mapped(_) | SkbStorage::SgMapped(_) => panic!("data_mut on mapped skb"),
        }
    }

    /// Copies the live bytes out (diagnostics/tests).
    pub fn to_vec(&self) -> Vec<u8> {
        self.with_frags(|frags| {
            let mut v = Vec::with_capacity(self.len());
            for fr in frags {
                v.extend_from_slice(fr.data);
            }
            v
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_com::interfaces::blkio::VecBufIo;

    #[test]
    fn reserve_put_push_pull_lifecycle() {
        // The canonical driver TX pattern: reserve header room, write
        // payload, push headers on the front.
        let mut skb = SkBuff::alloc(1536);
        skb.reserve(14); // Ethernet header room.
        skb.put(100).copy_from_slice(&[0xAA; 100]);
        assert_eq!(skb.len(), 100);
        skb.push(14).copy_from_slice(&[0xEE; 14]);
        assert_eq!(skb.len(), 114);
        assert_eq!(skb.headroom(), 0);
        skb.with_data(|d| {
            assert_eq!(&d[..14], &[0xEE; 14]);
            assert_eq!(&d[14..], &[0xAA; 100]);
        });
        // RX-side processing strips the header again.
        skb.pull(14);
        assert_eq!(skb.len(), 100);
    }

    #[test]
    #[should_panic(expected = "skb_over_panic")]
    fn put_overrun_panics() {
        let mut skb = SkBuff::alloc(8);
        skb.put(9);
    }

    #[test]
    #[should_panic(expected = "skb_under_panic")]
    fn push_without_headroom_panics() {
        let mut skb = SkBuff::alloc(8);
        skb.push(1);
    }

    #[test]
    fn trim_truncates() {
        let mut skb = SkBuff::from_vec(vec![1, 2, 3, 4, 5]);
        skb.trim(3);
        assert_eq!(skb.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn mapped_skb_is_zero_copy_readable() {
        let b = VecBufIo::from_vec(vec![9u8; 64]);
        let skb = SkBuff::fake_mapped(b, 64).unwrap();
        assert!(!skb.is_owned());
        assert!(!skb.is_sg());
        assert_eq!(skb.len(), 64);
        skb.with_data(|d| assert!(d.iter().all(|&x| x == 9)));
    }

    #[test]
    #[should_panic(expected = "skb_put on mapped skb")]
    fn mapped_skb_is_read_only() {
        let b = VecBufIo::from_vec(vec![0u8; 64]);
        let mut skb = SkBuff::fake_mapped(b, 32).unwrap();
        skb.put(1);
    }

    #[test]
    fn fake_mapped_rejects_short_bufio() {
        // A bufio shorter than the claimed packet length must be refused,
        // not silently masked by growing `end`.
        let b = VecBufIo::from_vec(vec![0u8; 10]);
        assert!(matches!(SkBuff::fake_mapped(b, 11), Err(Error::Inval)));
    }

    #[test]
    fn sg_skb_walks_fragments() {
        // A contiguous SgBufIo presents one fragment; the walk matches
        // the bytes exactly.
        let b = VecBufIo::from_vec((0..40).collect());
        let skb = SkBuff::fake_sg(b, 40).unwrap();
        assert!(skb.is_sg());
        assert!(!skb.is_owned());
        let n = skb.with_frags(|frags| frags.len());
        assert_eq!(n, 1);
        assert_eq!(skb.to_vec(), (0..40).collect::<Vec<u8>>());
    }

    #[test]
    fn fake_sg_rejects_short_bufio() {
        let b = VecBufIo::from_vec(vec![0u8; 10]);
        assert!(matches!(SkBuff::fake_sg(b, 11), Err(Error::Inval)));
    }

    #[test]
    #[should_panic(expected = "with_data on sg skb")]
    fn sg_skb_refuses_contiguous_access() {
        let b = VecBufIo::from_vec(vec![0u8; 8]);
        let skb = SkBuff::fake_sg(b, 8).unwrap();
        skb.with_data(|_| ());
    }

    #[test]
    fn owned_skb_presents_one_fragment() {
        let mut skb = SkBuff::alloc(32);
        skb.put(5).copy_from_slice(&[1, 2, 3, 4, 5]);
        skb.with_frags(|frags| {
            assert_eq!(frags.len(), 1);
            assert_eq!(frags[0].data, &[1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn tailroom_accounting() {
        let mut skb = SkBuff::alloc(100);
        assert_eq!(skb.tailroom(), 100);
        skb.reserve(10);
        assert_eq!(skb.tailroom(), 90);
        skb.put(20);
        assert_eq!(skb.tailroom(), 70);
        assert_eq!(skb.headroom(), 10);
    }
}
