//! `sk_buff` — the Linux network packet buffer, in donor idiom.
//!
//! This module is "encapsulated legacy code" in the sense of paper §4.7:
//! it keeps Linux 2.0's names and semantics (`alloc_skb`, `skb_reserve`,
//! `skb_put`, `skb_push`, `skb_pull`, the head/data/tail/end layout) so
//! the glue around it has something real to encapsulate.  The one Rust
//! twist is [`SkbStorage::Mapped`]: the "fake skbuff pointing directly to
//! this data" that the glue manufactures when a foreign `bufio` maps
//! contiguously (§4.7.3) — read-only, used only on the transmit hand-off.

use oskit_com::interfaces::blkio::BufIo;
use std::sync::Arc;

/// Where an skbuff's bytes live.
pub enum SkbStorage {
    /// The normal case: one contiguous owned buffer.
    Owned(Vec<u8>),
    /// A "fake" skbuff aliasing a foreign mapped buffer (zero copy).
    Mapped(Arc<dyn BufIo>),
}

/// The Linux packet buffer.
///
/// Layout invariant (as in Linux): `0 <= data <= tail <= end`, with the
/// packet's live bytes in `[data, tail)`.  `skb_reserve` opens headroom,
/// `skb_push`/`skb_pull` move the data edge for header processing, and
/// `skb_put` appends at the tail.
pub struct SkBuff {
    storage: SkbStorage,
    /// Offset of the first live byte.
    data: usize,
    /// Offset one past the last live byte.
    tail: usize,
    /// Total buffer capacity (`end`).
    end: usize,
    /// Receiving/transmitting device index, recorded by drivers.
    pub dev: Option<usize>,
    /// Ethernet protocol id (host order), set by `eth_type_trans`.
    pub protocol: u16,
}

impl SkBuff {
    /// `alloc_skb(size)`: an empty buffer of capacity `size`.
    pub fn alloc(size: usize) -> SkBuff {
        SkBuff {
            storage: SkbStorage::Owned(vec![0; size]),
            data: 0,
            tail: 0,
            end: size,
            dev: None,
            protocol: 0,
        }
    }

    /// Builds an skbuff that owns `bytes` outright (the DMA-filled
    /// receive case: the NIC deposited a complete frame).
    pub fn from_vec(bytes: Vec<u8>) -> SkBuff {
        let len = bytes.len();
        SkBuff {
            storage: SkbStorage::Owned(bytes),
            data: 0,
            tail: len,
            end: len,
            dev: None,
            protocol: 0,
        }
    }

    /// Builds a read-only "fake skbuff" aliasing a mapped foreign buffer
    /// (§4.7.3); `len` is the packet length.
    pub fn fake_mapped(bufio: Arc<dyn BufIo>, len: usize) -> SkBuff {
        let end = (bufio.get_size().unwrap_or(len as u64) as usize).max(len);
        SkBuff {
            storage: SkbStorage::Mapped(bufio),
            data: 0,
            tail: len,
            end,
            dev: None,
            protocol: 0,
        }
    }

    /// Whether this is a writable, owned skbuff.
    pub fn is_owned(&self) -> bool {
        matches!(self.storage, SkbStorage::Owned(_))
    }

    /// `skb->len`: live byte count.
    pub fn len(&self) -> usize {
        self.tail - self.data
    }

    /// True when no live bytes are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `skb_headroom()`.
    pub fn headroom(&self) -> usize {
        self.data
    }

    /// `skb_tailroom()`.
    pub fn tailroom(&self) -> usize {
        self.end - self.tail
    }

    /// `skb_reserve(len)`: opens headroom on an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if data is already present (as the kernel's would corrupt).
    pub fn reserve(&mut self, len: usize) {
        assert_eq!(self.len(), 0, "skb_reserve on non-empty skb");
        assert!(self.tail + len <= self.end, "skb_reserve beyond end");
        self.data += len;
        self.tail += len;
    }

    /// `skb_put(len)`: appends `len` bytes of space at the tail, returning
    /// a mutable slice of the new region.
    ///
    /// # Panics
    ///
    /// Panics if the buffer would overrun (`skb_over_panic`).
    pub fn put(&mut self, len: usize) -> &mut [u8] {
        assert!(self.tail + len <= self.end, "skb_over_panic");
        let start = self.tail;
        self.tail += len;
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[start..start + len],
            SkbStorage::Mapped(_) => panic!("skb_put on mapped skb"),
        }
    }

    /// `skb_push(len)`: prepends `len` bytes (header space), returning the
    /// new front region.
    ///
    /// # Panics
    ///
    /// Panics on headroom underrun (`skb_under_panic`).
    pub fn push(&mut self, len: usize) -> &mut [u8] {
        assert!(self.data >= len, "skb_under_panic");
        self.data -= len;
        let start = self.data;
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[start..start + len],
            SkbStorage::Mapped(_) => panic!("skb_push on mapped skb"),
        }
    }

    /// `skb_pull(len)`: strips `len` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes are live.
    pub fn pull(&mut self, len: usize) {
        assert!(self.len() >= len, "skb_pull beyond len");
        self.data += len;
    }

    /// `skb_trim(len)`: truncates to `len` live bytes.
    pub fn trim(&mut self, len: usize) {
        assert!(len <= self.len(), "skb_trim grows skb");
        self.tail = self.data + len;
    }

    /// Runs `f` over the live bytes (works for owned and mapped storage —
    /// this is the zero-copy read path the driver transmit uses).
    pub fn with_data<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        match &self.storage {
            SkbStorage::Owned(v) => f(&v[self.data..self.tail]),
            SkbStorage::Mapped(b) => {
                let mut out = None;
                let mut f = Some(f);
                b.with_map(self.data, self.tail - self.data, &mut |s| {
                    if let Some(f) = f.take() {
                        out = Some(f(s));
                    }
                })
                .expect("mapped skb lost its mapping");
                out.expect("with_map did not call back")
            }
        }
    }

    /// Mutable access to the live bytes (owned storage only).
    pub fn data_mut(&mut self) -> &mut [u8] {
        match &mut self.storage {
            SkbStorage::Owned(v) => &mut v[self.data..self.tail],
            SkbStorage::Mapped(_) => panic!("data_mut on mapped skb"),
        }
    }

    /// Copies the live bytes out (diagnostics/tests).
    pub fn to_vec(&self) -> Vec<u8> {
        self.with_data(|d| d.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_com::interfaces::blkio::VecBufIo;

    #[test]
    fn reserve_put_push_pull_lifecycle() {
        // The canonical driver TX pattern: reserve header room, write
        // payload, push headers on the front.
        let mut skb = SkBuff::alloc(1536);
        skb.reserve(14); // Ethernet header room.
        skb.put(100).copy_from_slice(&[0xAA; 100]);
        assert_eq!(skb.len(), 100);
        skb.push(14).copy_from_slice(&[0xEE; 14]);
        assert_eq!(skb.len(), 114);
        assert_eq!(skb.headroom(), 0);
        skb.with_data(|d| {
            assert_eq!(&d[..14], &[0xEE; 14]);
            assert_eq!(&d[14..], &[0xAA; 100]);
        });
        // RX-side processing strips the header again.
        skb.pull(14);
        assert_eq!(skb.len(), 100);
    }

    #[test]
    #[should_panic(expected = "skb_over_panic")]
    fn put_overrun_panics() {
        let mut skb = SkBuff::alloc(8);
        skb.put(9);
    }

    #[test]
    #[should_panic(expected = "skb_under_panic")]
    fn push_without_headroom_panics() {
        let mut skb = SkBuff::alloc(8);
        skb.push(1);
    }

    #[test]
    fn trim_truncates() {
        let mut skb = SkBuff::from_vec(vec![1, 2, 3, 4, 5]);
        skb.trim(3);
        assert_eq!(skb.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn mapped_skb_is_zero_copy_readable() {
        let b = VecBufIo::from_vec(vec![9u8; 64]);
        let skb = SkBuff::fake_mapped(b, 64);
        assert!(!skb.is_owned());
        assert_eq!(skb.len(), 64);
        skb.with_data(|d| assert!(d.iter().all(|&x| x == 9)));
    }

    #[test]
    #[should_panic(expected = "skb_put on mapped skb")]
    fn mapped_skb_is_read_only() {
        let b = VecBufIo::from_vec(vec![0u8; 64]);
        let mut skb = SkBuff::fake_mapped(b, 32);
        skb.put(1);
    }

    #[test]
    fn tailroom_accounting() {
        let mut skb = SkBuff::alloc(100);
        assert_eq!(skb.tailroom(), 100);
        skb.reserve(10);
        assert_eq!(skb.tailroom(), 90);
        skb.put(20);
        assert_eq!(skb.tailroom(), 70);
        assert_eq!(skb.headroom(), 10);
    }
}
