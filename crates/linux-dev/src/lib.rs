//! `oskit-linux-dev` — the encapsulated Linux driver set (paper §3.6, §4.7).
//!
//! "Currently, most of the Ethernet, SCSI, and IDE disk device drivers
//! from Linux 2.0.29 are included ... existing driver code is incorporated
//! into the OSKit largely unmodified using an encapsulation technique."
//!
//! Layout mirrors the paper's §4.7.1: [`linux`] holds the donor-idiom code
//! (skbuffs, the net-device model, the request-queue block layer, a mini
//! TCP/IP stack used as the monolithic-Linux baseline); [`glue`] holds the
//! thin OSKit layer that encapsulates it — COM `etherdev`/`blkio` exports,
//! skbuff↔bufio wrapping (§4.7.3), manufactured `current` (§4.7.5), and
//! wait-queue emulation over osenv sleep records (§4.7.6).

pub mod glue;
pub mod linux;

pub use glue::block::LinuxBlkIo;
pub use glue::ether::{LinuxEtherDev, SkbBufIo, SkbIo};
pub use glue::sockets::{LinuxComSocket, LinuxSocketFactory};
pub use glue::{fdev_linux_init_ethernet, fdev_linux_init_ide};
pub use linux::inet::{LinuxInet, LinuxSock};
pub use linux::netdevice::{NetDevice, NETIF_F_NAPI, NETIF_F_SG};
pub use linux::skbuff::SkBuff;
