//! The block-device glue: `oskit_blkio` over the Linux request queue.
//!
//! Exports the paper's Figure 2 interface.  Byte-granularity requests are
//! honored with read-modify-write of partial sectors, as the original
//! glue's `blkio` wrappers did.

use crate::linux::blkdev::{Cmd, IdeDrive};
use crate::linux::sched::CurrentPtr;
use oskit_com::interfaces::blkio::BlkIo;
use oskit_com::{com_object, new_com, Error, Result, SelfRef};
use oskit_machine::SECTOR_SIZE;
use oskit_osenv::OsEnv;
use std::sync::Arc;

/// The COM block device over an encapsulated Linux IDE drive.
pub struct LinuxBlkIo {
    me: SelfRef<LinuxBlkIo>,
    env: Arc<OsEnv>,
    drive: Arc<IdeDrive>,
    current: Arc<CurrentPtr>,
}

impl LinuxBlkIo {
    /// Wraps a drive.
    pub fn new(env: &Arc<OsEnv>, drive: &Arc<IdeDrive>) -> Arc<LinuxBlkIo> {
        new_com(
            LinuxBlkIo {
                me: SelfRef::new(),
                env: Arc::clone(env),
                drive: Arc::clone(drive),
                current: Arc::new(CurrentPtr::new()),
            },
            |o| &o.me,
        )
    }

    /// Reads whole sectors covering `[offset, offset+len)`.
    fn read_covering(&self, offset: u64, len: usize) -> Result<(u64, Vec<u8>)> {
        let first = offset / SECTOR_SIZE as u64;
        let last = (offset + len as u64).div_ceil(SECTOR_SIZE as u64);
        let count = (last - first) as usize;
        let data = self
            .drive
            .rw_blocking(Cmd::Read, first, count, None)
            .map_err(|()| Error::Io)?
            .ok_or(Error::Io)?;
        Ok((first, data))
    }
}

impl BlkIo for LinuxBlkIo {
    fn get_block_size(&self) -> usize {
        SECTOR_SIZE
    }

    fn read(&self, buf: &mut [u8], offset: u64) -> Result<usize> {
        let b = oskit_machine::boundary!("linux-dev", "blk_read");
        let _span = self.env.machine.span(b);
        self.env.machine.charge_crossing_at(b);
        let _entry = super::curproc::GlueEntry::new(&self.current, "oskit_blk_read");
        let size = self.get_size()?;
        if offset >= size {
            return Ok(0);
        }
        let len = buf.len().min((size - offset) as usize);
        if len == 0 {
            return Ok(0);
        }
        let (first, data) = self.read_covering(offset, len)?;
        let skew = (offset - first * SECTOR_SIZE as u64) as usize;
        buf[..len].copy_from_slice(&data[skew..skew + len]);
        self.env.machine.charge_copy_at(b, len);
        Ok(len)
    }

    fn write(&self, buf: &[u8], offset: u64) -> Result<usize> {
        let b = oskit_machine::boundary!("linux-dev", "blk_write");
        let _span = self.env.machine.span(b);
        self.env.machine.charge_crossing_at(b);
        let _entry = super::curproc::GlueEntry::new(&self.current, "oskit_blk_write");
        let size = self.get_size()?;
        if offset >= size {
            return Err(Error::Inval);
        }
        let len = buf.len().min((size - offset) as usize);
        if len == 0 {
            return Ok(0);
        }
        let sector_sz = SECTOR_SIZE as u64;
        let aligned = offset.is_multiple_of(sector_sz) && len.is_multiple_of(SECTOR_SIZE);
        let (first, mut data) = if aligned {
            (offset / sector_sz, buf[..len].to_vec())
        } else {
            // Read-modify-write the covering sectors.
            let (first, mut data) = self.read_covering(offset, len)?;
            let skew = (offset - first * sector_sz) as usize;
            data[skew..skew + len].copy_from_slice(&buf[..len]);
            (first, data)
        };
        self.env.machine.charge_copy_at(b, len);
        // Pad up to a whole sector (cannot happen when aligned).
        let rem = data.len() % SECTOR_SIZE;
        if rem != 0 {
            data.extend(std::iter::repeat_n(0u8, SECTOR_SIZE - rem));
        }
        self.drive
            .rw_blocking(Cmd::Write, first, data.len() / SECTOR_SIZE, Some(data))
            .map_err(|()| Error::Io)?;
        Ok(len)
    }

    fn get_size(&self) -> Result<u64> {
        Ok(self.drive.capacity() * SECTOR_SIZE as u64)
    }
}

com_object!(LinuxBlkIo, me, [BlkIo]);

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_machine::{Disk, Machine, Sim};

    fn setup() -> (Arc<Sim>, Arc<LinuxBlkIo>) {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 1 << 20);
        let disk = Disk::new(&m, 64);
        let env = OsEnv::new(&m);
        let drive = IdeDrive::new("hda", &env, disk);
        m.irq.enable();
        (sim, LinuxBlkIo::new(&env, &drive))
    }

    #[test]
    fn figure2_interface_round_trip() {
        let (sim, blk) = setup();
        let b2 = Arc::clone(&blk);
        sim.spawn("io", move || {
            assert_eq!(b2.get_block_size(), SECTOR_SIZE);
            assert_eq!(b2.get_size().unwrap(), 64 * SECTOR_SIZE as u64);
            let data = vec![0xC3u8; SECTOR_SIZE];
            assert_eq!(b2.write(&data, 0).unwrap(), SECTOR_SIZE);
            let mut back = vec![0u8; SECTOR_SIZE];
            assert_eq!(b2.read(&mut back, 0).unwrap(), SECTOR_SIZE);
            assert_eq!(back, data);
        });
        sim.run();
    }

    #[test]
    fn unaligned_write_preserves_neighbours() {
        let (sim, blk) = setup();
        let b2 = Arc::clone(&blk);
        sim.spawn("io", move || {
            // Lay down a known pattern across two sectors.
            let pattern: Vec<u8> = (0..SECTOR_SIZE * 2).map(|i| (i % 256) as u8).collect();
            b2.write(&pattern, 0).unwrap();
            // Overwrite 10 bytes straddling the sector boundary.
            b2.write(&[0xFF; 10], SECTOR_SIZE as u64 - 5).unwrap();
            let mut back = vec![0u8; SECTOR_SIZE * 2];
            b2.read(&mut back, 0).unwrap();
            for (i, &b) in back.iter().enumerate() {
                let in_patch =
                    (SECTOR_SIZE - 5..SECTOR_SIZE + 5).contains(&i);
                if in_patch {
                    assert_eq!(b, 0xFF, "patch byte {i}");
                } else {
                    assert_eq!(b, (i % 256) as u8, "preserved byte {i}");
                }
            }
        });
        sim.run();
    }

    #[test]
    fn read_past_end_returns_zero() {
        let (sim, blk) = setup();
        let b2 = Arc::clone(&blk);
        sim.spawn("io", move || {
            let mut buf = [0u8; 16];
            assert_eq!(b2.read(&mut buf, 1 << 30).unwrap(), 0);
        });
        sim.run();
    }

    #[test]
    fn short_read_at_device_end() {
        let (sim, blk) = setup();
        let b2 = Arc::clone(&blk);
        sim.spawn("io", move || {
            let end = b2.get_size().unwrap();
            let mut buf = vec![0u8; 100];
            assert_eq!(b2.read(&mut buf, end - 30).unwrap(), 30);
        });
        sim.run();
    }
}
