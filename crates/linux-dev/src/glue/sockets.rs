//! A socket factory over the Linux-style stack — proving the paper's §5
//! claim: "since the C library's socket call uses a client-provided
//! socket factory interface to create new sockets, this C library code
//! can be used with any protocol stack that provides these socket and
//! socket factory interfaces."

use crate::linux::inet::{LinuxInet, LinuxSock};
use oskit_com::interfaces::socket::{
    Domain, Shutdown, SockAddr, SockOpt, SockType, Socket, SocketFactory,
};
use oskit_com::interfaces::stream::{AsyncIo, IoReady, Stream};
use oskit_com::{com_object, new_com, Error, Result, SelfRef};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The Linux stack's socket factory (TCP only; the mini stack has no UDP).
pub struct LinuxSocketFactory {
    me: SelfRef<LinuxSocketFactory>,
    inet: Arc<LinuxInet>,
}

impl LinuxSocketFactory {
    /// Wraps a stack instance.
    pub fn new(inet: &Arc<LinuxInet>) -> Arc<LinuxSocketFactory> {
        new_com(
            LinuxSocketFactory {
                me: SelfRef::new(),
                inet: Arc::clone(inet),
            },
            |o| &o.me,
        )
    }
}

impl SocketFactory for LinuxSocketFactory {
    fn create(&self, domain: Domain, ty: SockType) -> Result<Arc<dyn Socket>> {
        let Domain::Inet = domain;
        match ty {
            SockType::Stream => Ok(LinuxComSocket::wrap(self.inet.socket()) as Arc<dyn Socket>),
            SockType::Dgram => Err(Error::ProtoNoSupport),
        }
    }
}

com_object!(LinuxSocketFactory, me, [SocketFactory]);

/// A Linux socket behind the standard COM socket interface.
pub struct LinuxComSocket {
    me: SelfRef<LinuxComSocket>,
    sock: Arc<LinuxSock>,
}

impl LinuxComSocket {
    fn wrap(sock: Arc<LinuxSock>) -> Arc<LinuxComSocket> {
        new_com(
            LinuxComSocket {
                me: SelfRef::new(),
                sock,
            },
            |o| &o.me,
        )
    }
}

/// The mini stack reports failures as `()`; map them onto the closest
/// errno, as the real glue's error conversion tables did (§4.7.2).
fn conv<T>(r: std::result::Result<T, ()>, e: Error) -> Result<T> {
    r.map_err(|()| e)
}

impl Socket for LinuxComSocket {
    fn bind(&self, addr: SockAddr) -> Result<()> {
        conv(self.sock.bind(addr.port), Error::AddrInUse)
    }

    fn connect(&self, addr: SockAddr) -> Result<()> {
        conv(self.sock.connect(addr.addr, addr.port), Error::ConnRefused)
    }

    fn listen(&self, backlog: usize) -> Result<()> {
        conv(self.sock.listen(backlog), Error::Inval)
    }

    fn accept(&self) -> Result<(Arc<dyn Socket>, SockAddr)> {
        let child = conv(self.sock.accept(), Error::Inval)?;
        let peer = child.peer_addr();
        Ok((
            LinuxComSocket::wrap(child) as Arc<dyn Socket>,
            SockAddr::new(peer.0, peer.1),
        ))
    }

    fn send(&self, buf: &[u8]) -> Result<usize> {
        conv(self.sock.send(buf), Error::Pipe)
    }

    fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        conv(self.sock.recv(buf), Error::NotConn)
    }

    fn sendto(&self, _buf: &[u8], _addr: SockAddr) -> Result<usize> {
        Err(Error::OpNotSupp)
    }

    fn recvfrom(&self, _buf: &mut [u8]) -> Result<(usize, SockAddr)> {
        Err(Error::OpNotSupp)
    }

    fn getsockname(&self) -> Result<SockAddr> {
        let (a, p) = self.sock.local_addr();
        Ok(SockAddr::new(a, p))
    }

    fn getpeername(&self) -> Result<SockAddr> {
        let (a, p) = self.sock.peer_addr();
        if a == Ipv4Addr::UNSPECIFIED {
            return Err(Error::NotConn);
        }
        Ok(SockAddr::new(a, p))
    }

    fn setsockopt(&self, _opt: SockOpt) -> Result<()> {
        Ok(()) // The mini stack has fixed buffers and no Nagle knob.
    }

    fn shutdown(&self, how: Shutdown) -> Result<()> {
        if matches!(how, Shutdown::Write | Shutdown::Both) {
            self.sock.close();
        }
        Ok(())
    }
}

impl Stream for LinuxComSocket {
    fn read(&self, buf: &mut [u8]) -> Result<usize> {
        self.recv(buf)
    }

    fn write(&self, buf: &[u8]) -> Result<usize> {
        self.send(buf)
    }
}

impl AsyncIo for LinuxComSocket {
    fn poll(&self) -> Result<IoReady> {
        Ok(IoReady {
            readable: self.sock.readable(),
            writable: true,
            exception: false,
        })
    }
}

com_object!(LinuxComSocket, me, [Socket, Stream, AsyncIo]);
