//! Manufacturing the "current process" on demand (paper §4.7.5).
//!
//! "To emulate the current process, at every entrypoint into the component
//! from the 'outside,' the glue code creates and initializes a minimal
//! temporary process structure on the stack, and initializes the global
//! (component-wide) `curproc` pointer to point to it.  This structure then
//! represents the 'current process' ... for the duration of this call, and
//! automatically disappears when the call completes."

use crate::linux::sched::{CurrentPtr, TaskStruct};

/// RAII scope that installs a manufactured task as `current` and restores
/// the previous value on exit — including around blocking calls back to
/// the client, where another thread's glue entry may install its own.
pub struct GlueEntry<'a> {
    cur: &'a CurrentPtr,
    saved: Option<TaskStruct>,
}

impl<'a> GlueEntry<'a> {
    /// Enters the component: manufactures a process.
    pub fn new(cur: &'a CurrentPtr, comm: &str) -> GlueEntry<'a> {
        let saved = cur.set(Some(TaskStruct {
            pid: -1,
            comm: comm.to_string(),
        }));
        GlueEntry { cur, saved }
    }

    /// Runs a blocking call back to the client OS with `current` parked:
    /// "the glue code must also intercept these calls and save the
    /// `curproc` pointer on the local per-thread stack for their duration
    /// in order to prevent it from getting trashed by other concurrent
    /// activities."
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        let mine = self.cur.set(None);
        let r = f();
        let other = self.cur.set(mine);
        debug_assert!(
            other.is_none(),
            "another glue entry left its current installed"
        );
        r
    }
}

impl Drop for GlueEntry<'_> {
    fn drop(&mut self) {
        self.cur.set(self.saved.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_installs_and_restores() {
        let cur = CurrentPtr::new();
        assert!(!cur.is_set());
        {
            let _e = GlueEntry::new(&cur, "oskit_glue");
            assert_eq!(cur.current().pid, -1);
            assert_eq!(cur.current().comm, "oskit_glue");
        }
        assert!(!cur.is_set());
    }

    #[test]
    fn nested_entries_restore_in_order() {
        let cur = CurrentPtr::new();
        let a = GlueEntry::new(&cur, "a");
        {
            let _b = GlueEntry::new(&cur, "b");
            assert_eq!(cur.current().comm, "b");
        }
        assert_eq!(cur.current().comm, "a");
        drop(a);
        assert!(!cur.is_set());
    }

    #[test]
    fn blocking_parks_current_so_others_can_enter() {
        let cur = CurrentPtr::new();
        let e = GlueEntry::new(&cur, "first");
        e.blocking(|| {
            // While "first" blocks back into the client, another thread
            // enters the component with its own manufactured process.
            assert!(!cur.is_set());
            let _e2 = GlueEntry::new(&cur, "second");
            assert_eq!(cur.current().comm, "second");
        });
        assert_eq!(cur.current().comm, "first");
    }
}
