//! The OSKit glue around the Linux-style driver set (paper §4.7).
//!
//! "The OSKit defines a set of COM interfaces by which the client OS
//! invokes OSKit services; the OSKit components implement these services
//! in a thin layer of glue code, which in turn relies on a much larger
//! mass of encapsulated code."

pub mod block;
pub mod curproc;
pub mod ether;
pub mod sockets;

use crate::linux::netdevice::NetDevice;
use oskit_fdev::{Bus, DeviceClass, DeviceNode, DeviceRegistry, Driver};
use oskit_osenv::OsEnv;
use std::sync::Arc;

/// The Linux Ethernet driver set entry point: the paper's
/// `fdev_linux_init_ethernet()`, "causing all supported drivers to be
/// linked into the resulting application".
pub fn fdev_linux_init_ethernet(registry: &DeviceRegistry) {
    registry.register_driver(Arc::new(LinuxEtherDriver));
    oskit_com::registry::register(oskit_com::registry::ComponentDesc {
        name: "linux_ethernet",
        library: "liboskit_linux_dev",
        provenance: oskit_com::registry::Provenance::Encapsulated {
            donor: "Linux 2.0.29",
        },
        exports: vec!["oskit_etherdev", "oskit_netio", "oskit_bufio"],
        imports: vec!["osenv_mem", "osenv_intr", "osenv_sleep", "osenv_timer"],
    });
}

/// The Linux IDE driver set entry point (`fdev_linux_init_ide()`).
pub fn fdev_linux_init_ide(registry: &DeviceRegistry) {
    registry.register_driver(Arc::new(LinuxIdeDriver));
    oskit_com::registry::register(oskit_com::registry::ComponentDesc {
        name: "linux_ide",
        library: "liboskit_linux_dev",
        provenance: oskit_com::registry::Provenance::Encapsulated {
            donor: "Linux 2.0.29",
        },
        exports: vec!["oskit_blkio"],
        imports: vec!["osenv_mem", "osenv_intr", "osenv_sleep"],
    });
}

struct LinuxEtherDriver;

impl Driver for LinuxEtherDriver {
    fn name(&self) -> &str {
        "linux ethernet (lance-class)"
    }

    fn probe(&self, env: &Arc<OsEnv>, bus: &Bus) -> Vec<DeviceNode> {
        let mut out = Vec::new();
        while let Some((i, nic)) = bus.claim_nic() {
            let netdev = NetDevice::new(format!("eth{i}"), env, nic);
            let com = ether::LinuxEtherDev::new(env, &netdev);
            out.push(DeviceNode {
                name: netdev.name.clone(),
                class: DeviceClass::Ethernet,
                description: "Linux 2.0.29 lance-class Ethernet (encapsulated)".into(),
                object: com as Arc<dyn oskit_com::IUnknown>,
            });
        }
        out
    }
}

struct LinuxIdeDriver;

impl Driver for LinuxIdeDriver {
    fn name(&self) -> &str {
        "linux ide"
    }

    fn probe(&self, env: &Arc<OsEnv>, bus: &Bus) -> Vec<DeviceNode> {
        let mut out = Vec::new();
        let names = ["hda", "hdb", "hdc", "hdd"];
        let mut n = 0;
        while let Some((_, disk)) = bus.claim_disk() {
            let name = names.get(n).copied().unwrap_or("hdx");
            n += 1;
            let drive = crate::linux::blkdev::IdeDrive::new(name, env, disk);
            let com = block::LinuxBlkIo::new(env, &drive);
            out.push(DeviceNode {
                name: name.to_string(),
                class: DeviceClass::Block,
                description: "Linux 2.0.29 IDE (encapsulated)".into(),
                object: com as Arc<dyn oskit_com::IUnknown>,
            });
        }
        out
    }
}
