//! The Ethernet glue: skbuff ↔ bufio (paper §4.7.3).
//!
//! Receive: "the Linux glue code can export the skbuff directly as a COM
//! bufio object without copying the data, merely by adding a bufio
//! interface to the skbuff structure itself."
//!
//! Transmit: "the Linux glue code can easily recognize 'foreign' bufio
//! objects ...; when it receives one, it first calls its map method to
//! obtain a direct pointer to the data ...  If it does, the Linux glue
//! code creates a 'fake' skbuff pointing directly to this data.
//! Otherwise, the glue code allocates a normal skbuff and calls the bufio
//! interface's read method to copy the data into the buffer."

use crate::linux::netdevice::{NetDevice, NETIF_F_SG};
use crate::linux::sched::CurrentPtr;
use crate::linux::skbuff::SkBuff;
use oskit_com::interfaces::blkio::{BlkIo, BufIo, SgBufIo};
use oskit_com::interfaces::netio::{EtherAddr, EtherDev, NetIo};
use oskit_com::{com_interface_decl, com_object, new_com, oskit_iid, Error, IUnknown, Query, Result, SelfRef};
use oskit_osenv::OsEnv;
use std::sync::Arc;

/// The private interface by which the glue recognizes its own skbuff-backed
/// bufio objects ("checking their function table pointer", §4.7.3).
pub trait SkbIo: IUnknown {
    /// Grants access to the underlying skbuff.
    fn with_skb(&self, f: &mut dyn FnMut(&SkBuff));
}
com_interface_decl!(SkbIo, oskit_iid(0xA0), "linux_skbio");

/// An skbuff exported as a COM bufio object: the receive-path zero-copy
/// wrapper.
pub struct SkbBufIo {
    me: SelfRef<SkbBufIo>,
    skb: SkBuff,
}

impl SkbBufIo {
    /// Wraps a received skbuff.
    pub fn new(skb: SkBuff) -> Arc<SkbBufIo> {
        new_com(
            SkbBufIo {
                me: SelfRef::new(),
                skb,
            },
            |o| &o.me,
        )
    }
}

impl BlkIo for SkbBufIo {
    fn get_block_size(&self) -> usize {
        1
    }

    fn read(&self, buf: &mut [u8], offset: u64) -> Result<usize> {
        self.skb.with_data(|d| {
            let off = offset as usize;
            if off >= d.len() {
                return Ok(0);
            }
            let n = buf.len().min(d.len() - off);
            buf[..n].copy_from_slice(&d[off..off + n]);
            Ok(n)
        })
    }

    fn write(&self, _buf: &[u8], _offset: u64) -> Result<usize> {
        // Received packets are immutable once exported.
        Err(Error::NotImpl)
    }

    fn get_size(&self) -> Result<u64> {
        Ok(self.skb.len() as u64)
    }
}

impl BufIo for SkbBufIo {
    fn with_map(&self, offset: usize, len: usize, f: &mut dyn FnMut(&[u8])) -> Result<()> {
        // The skbuff is contiguous by construction: mapping always
        // succeeds and costs nothing.
        self.skb.with_data(|d| {
            let end = offset.checked_add(len).ok_or(Error::Inval)?;
            if end > d.len() {
                return Err(Error::Inval);
            }
            f(&d[offset..end]);
            Ok(())
        })
    }

    fn with_map_mut(&self, _o: usize, _l: usize, _f: &mut dyn FnMut(&mut [u8])) -> Result<()> {
        Err(Error::NotImpl)
    }
}

impl SkbIo for SkbBufIo {
    fn with_skb(&self, f: &mut dyn FnMut(&SkBuff)) {
        f(&self.skb);
    }
}

// An skbuff is contiguous, so the provided single-fragment gather view
// suffices.
impl SgBufIo for SkbBufIo {}

com_object!(SkbBufIo, me, [BlkIo, BufIo, SgBufIo, SkbIo]);

/// The COM Ethernet device exported by the Linux driver glue.
pub struct LinuxEtherDev {
    me: SelfRef<LinuxEtherDev>,
    env: Arc<OsEnv>,
    dev: Arc<NetDevice>,
    current: Arc<CurrentPtr>,
}

impl LinuxEtherDev {
    /// Wraps a Linux net device.
    pub fn new(env: &Arc<OsEnv>, dev: &Arc<NetDevice>) -> Arc<LinuxEtherDev> {
        new_com(
            LinuxEtherDev {
                me: SelfRef::new(),
                env: Arc::clone(env),
                dev: Arc::clone(dev),
                current: Arc::new(CurrentPtr::new()),
            },
            |o| &o.me,
        )
    }
}

impl EtherDev for LinuxEtherDev {
    fn open(&self, rx: Arc<dyn NetIo>) -> Result<Arc<dyn NetIo>> {
        // Receive path: wrap each skbuff as a bufio and push it to the
        // client's netio.  One component-boundary crossing; zero copies.
        // A NAPI-mode device calls this back-to-back for a whole poll
        // batch — the per-frame contract is unchanged, so batching is
        // invisible here except that the frames share one irq+poll
        // dispatch instead of paying one interrupt each.
        let env = Arc::clone(&self.env);
        self.dev.set_rx_handler(move |skb| {
            let b = oskit_machine::boundary!("linux-dev", "ether_rx");
            let _span = env.machine.span(b);
            env.machine.charge_crossing_at(b);
            let _ = rx.push(SkbBufIo::new(skb) as Arc<dyn BufIo>);
        });
        self.dev.open();
        // Transmit path: hand back our send netio.
        Ok(new_com(
            LinuxTxNetIo {
                me: SelfRef::new(),
                env: Arc::clone(&self.env),
                dev: Arc::clone(&self.dev),
                current: Arc::clone(&self.current),
            },
            |o| &o.me,
        ) as Arc<dyn NetIo>)
    }

    fn get_addr(&self) -> EtherAddr {
        EtherAddr(self.dev.dev_addr)
    }

    fn describe(&self) -> String {
        format!("{}: Linux 2.0.29 encapsulated driver", self.dev.name)
    }
}

com_object!(LinuxEtherDev, me, [EtherDev]);

/// The transmit-side netio.
struct LinuxTxNetIo {
    me: SelfRef<LinuxTxNetIo>,
    env: Arc<OsEnv>,
    dev: Arc<NetDevice>,
    current: Arc<CurrentPtr>,
}

impl NetIo for LinuxTxNetIo {
    fn push(&self, pkt: Arc<dyn BufIo>) -> Result<()> {
        let b = oskit_machine::boundary!("linux-dev", "ether_tx");
        let _span = self.env.machine.span(b);
        self.env.machine.charge_crossing_at(b);
        // Entering the encapsulated component: manufacture `current`
        // (§4.7.5).
        let _entry = super::curproc::GlueEntry::new(&self.current, "oskit_tx");
        let len = pkt.get_size()? as usize;
        // An oversized packet from a foreign component is the caller's
        // bug, not grounds for taking the kernel down: reject it here
        // rather than tripping the driver's MTU assertion.
        if len > self.dev.mtu + crate::linux::netdevice::ETH_HLEN {
            return Err(Error::Inval);
        }

        // Native skbuff? Reuse it outright.
        if let Some(skbio) = pkt.query::<dyn SkbIo>() {
            let mut sent = false;
            skbio.with_skb(&mut |skb| {
                self.dev.hard_start_xmit(skb);
                sent = true;
            });
            debug_assert!(sent);
            return Ok(());
        }

        // SG-capable driver: a foreign packet that can expose its bytes
        // as local fragments goes down as a fragment-list "fake" skbuff —
        // no flattening, no copy.  This is the NETIF_F_SG path real Linux
        // later grew; the probe-map/copy ladder below remains the
        // paper-faithful default.
        if self.dev.has_feature(NETIF_F_SG) {
            if let Some(sg) = pkt.query::<dyn SgBufIo>() {
                match SkBuff::fake_sg(sg, len) {
                    Ok(skb) => {
                        self.dev.hard_start_xmit(&skb);
                        return Ok(());
                    }
                    // Fragments not locally mappable (e.g. external
                    // storage): fall through to the ladder.
                    Err(Error::NotImpl) => {}
                    Err(e) => return Err(e),
                }
            }
        }

        // Foreign but contiguous: transmit inside the mapping itself, so
        // the probe that proves mappability is also the map the hardware
        // hand-off reads through — one `with_map` per packet, no copy.
        let mut sent = false;
        match pkt.with_map(0, len, &mut |frame| {
            self.dev.xmit_frame(frame);
            sent = true;
        }) {
            Ok(()) => {
                debug_assert!(sent);
                Ok(())
            }
            Err(Error::NotImpl) => {
                // Discontiguous (e.g. an mbuf chain): allocate a normal
                // skbuff and *copy* — the send-path cost of Table 1.  The
                // allocation can fail under memory pressure; the donor
                // answer is to drop the packet (TCP retransmits it), never
                // to panic.
                if self.env.machine.faults().alloc_fail(false) {
                    self.env.machine.faults().note_pkt_alloc_drop();
                    return Ok(());
                }
                let mut skb = SkBuff::alloc(len);
                let dst = skb.put(len);
                let n = pkt.read(dst, 0)?;
                if n != len {
                    return Err(Error::Io);
                }
                self.env.machine.charge_copy_at(b, len);
                self.dev.hard_start_xmit(&skb);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

com_object!(LinuxTxNetIo, me, [NetIo]);

#[cfg(test)]
mod tests {
    use super::*;
    use oskit_com::interfaces::blkio::VecBufIo;
    use oskit_com::interfaces::netio::FnNetIo;
    use oskit_machine::{Machine, Nic, Sim, SleepRecord};
    use parking_lot::Mutex;

    /// A deliberately unmappable bufio (simulating an mbuf chain).
    struct ChainBufIo {
        me: SelfRef<ChainBufIo>,
        parts: Vec<Vec<u8>>,
    }
    impl BlkIo for ChainBufIo {
        fn get_block_size(&self) -> usize {
            1
        }
        fn read(&self, buf: &mut [u8], offset: u64) -> Result<usize> {
            let flat: Vec<u8> = self.parts.concat();
            let off = offset as usize;
            if off >= flat.len() {
                return Ok(0);
            }
            let n = buf.len().min(flat.len() - off);
            buf[..n].copy_from_slice(&flat[off..off + n]);
            Ok(n)
        }
        fn write(&self, _: &[u8], _: u64) -> Result<usize> {
            Err(Error::NotImpl)
        }
        fn get_size(&self) -> Result<u64> {
            Ok(self.parts.iter().map(Vec::len).sum::<usize>() as u64)
        }
    }
    impl BufIo for ChainBufIo {
        fn with_map(&self, _: usize, _: usize, _: &mut dyn FnMut(&[u8])) -> Result<()> {
            Err(Error::NotImpl) // Discontiguous.
        }
        fn with_map_mut(&self, _: usize, _: usize, _: &mut dyn FnMut(&mut [u8])) -> Result<()> {
            Err(Error::NotImpl)
        }
    }
    impl oskit_com::interfaces::blkio::SgBufIo for ChainBufIo {
        fn with_map_fragments(
            &self,
            mut offset: usize,
            mut len: usize,
            f: &mut dyn FnMut(&[oskit_com::interfaces::blkio::IoFragment<'_>]),
        ) -> Result<()> {
            let total: usize = self.parts.iter().map(Vec::len).sum();
            let end = offset.checked_add(len).ok_or(Error::Inval)?;
            if end > total {
                return Err(Error::Inval);
            }
            let mut frags = Vec::new();
            for p in &self.parts {
                if len == 0 {
                    break;
                }
                if offset >= p.len() {
                    offset -= p.len();
                    continue;
                }
                let take = (p.len() - offset).min(len);
                frags.push(oskit_com::interfaces::blkio::IoFragment {
                    data: &p[offset..offset + take],
                });
                len -= take;
                offset = 0;
            }
            f(&frags);
            Ok(())
        }
    }
    com_object!(ChainBufIo, me, [BlkIo, BufIo, SgBufIo]);

    type Keep = (Arc<LinuxEtherDev>, Arc<LinuxEtherDev>, Arc<dyn NetIo>);
    /// (sim, machine a, tx netio a, machine b, frames b received, keep-alives).
    type Rig = (
        Arc<Sim>,
        Arc<Machine>,
        Arc<dyn NetIo>,
        Arc<Machine>,
        Arc<Mutex<Vec<Vec<u8>>>>,
        Keep,
    );

    fn setup() -> Rig {
        setup_with(false)
    }

    fn setup_with(sg: bool) -> Rig {
        let sim = Sim::new();
        let ma = Machine::new(&sim, "a", 1 << 20);
        let mb = Machine::new(&sim, "b", 1 << 20);
        let na = Nic::new(&ma, [2, 0, 0, 0, 0, 1]);
        let nb = Nic::new(&mb, [2, 0, 0, 0, 0, 2]);
        Nic::connect(&na, &nb);
        let ea = OsEnv::new(&ma);
        let eb = OsEnv::new(&mb);
        let da = NetDevice::new("eth0", &ea, na);
        if sg {
            da.set_features(NETIF_F_SG);
        }
        let db = NetDevice::new("eth0", &eb, nb);
        let ca = LinuxEtherDev::new(&ea, &da);
        let cb = LinuxEtherDev::new(&eb, &db);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        let _tx_b = cb
            .open(FnNetIo::new(move |pkt| {
                g2.lock().push(oskit_com::interfaces::blkio::bufio_to_vec(&*pkt)?);
                Ok(())
            }) as Arc<dyn NetIo>)
            .unwrap();
        let tx_a = ca
            .open(FnNetIo::new(|_| Ok(())) as Arc<dyn NetIo>)
            .unwrap();
        ma.irq.enable();
        mb.irq.enable();
        let keep = (ca, cb, Arc::clone(&_tx_b));
        (sim, ma, tx_a, mb, got, keep)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = vec![0u8; 14 + payload.len()];
        f[0..6].copy_from_slice(&[2, 0, 0, 0, 0, 2]);
        f[6..12].copy_from_slice(&[2, 0, 0, 0, 0, 1]);
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f[14..].copy_from_slice(payload);
        f
    }

    #[test]
    fn contiguous_foreign_packet_is_sent_without_copy() {
        let (sim, ma, tx_a, _mb, got, _keep) = setup();
        let f = frame(&[0x11; 200]);
        let s2 = Arc::clone(&sim);
        sim.spawn("tx", move || {
            let pkt = VecBufIo::from_vec(f);
            tx_a.push(pkt as Arc<dyn BufIo>).unwrap();
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        assert_eq!(got.lock().len(), 1);
        // The crucial claim: zero bytes copied on the mapped path.
        assert_eq!(ma.meter.snapshot().bytes_copied, 0);
    }

    #[test]
    fn discontiguous_foreign_packet_is_copied_once() {
        let (sim, ma, tx_a, _mb, got, _keep) = setup();
        let f = frame(&[0x22; 300]);
        let parts = vec![f[..100].to_vec(), f[100..].to_vec()];
        let s2 = Arc::clone(&sim);
        sim.spawn("tx", move || {
            let pkt = new_com(
                ChainBufIo {
                    me: SelfRef::new(),
                    parts,
                },
                |o| &o.me,
            );
            tx_a.push(pkt as Arc<dyn BufIo>).unwrap();
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        assert_eq!(got.lock().len(), 1);
        assert_eq!(got.lock()[0].len(), 314);
        // Exactly one copy of the whole frame (the paper's send-path
        // penalty).
        let m = ma.meter.snapshot();
        assert_eq!(m.copies, 1);
        assert_eq!(m.bytes_copied, 314);
    }

    #[test]
    fn sg_driver_gathers_discontiguous_packet_without_copy() {
        // The same chain that costs a copy on the default driver goes
        // down as a fragment list when NETIF_F_SG is on: zero copies,
        // one gather.
        let (sim, ma, tx_a, _mb, got, _keep) = setup_with(true);
        let f = frame(&[0x33; 300]);
        let parts = vec![f[..100].to_vec(), f[100..].to_vec()];
        let s2 = Arc::clone(&sim);
        sim.spawn("tx", move || {
            let pkt = new_com(
                ChainBufIo {
                    me: SelfRef::new(),
                    parts,
                },
                |o| &o.me,
            );
            tx_a.push(pkt as Arc<dyn BufIo>).unwrap();
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        assert_eq!(got.lock().len(), 1);
        assert_eq!(got.lock()[0].len(), 314);
        assert_eq!(&got.lock()[0][14..], &[0x33; 300]);
        let m = ma.meter.snapshot();
        assert_eq!(m.copies, 0);
        assert_eq!(m.bytes_copied, 0);
        assert_eq!(m.gathers, 1);
        assert_eq!(m.bytes_gathered, 314);
    }

    #[test]
    fn non_sg_driver_never_gathers() {
        // With the feature off, the SG interface is never even queried:
        // the copy ladder runs exactly as in the paper.
        let (sim, ma, tx_a, _mb, got, _keep) = setup();
        let f = frame(&[0x44; 300]);
        let parts = vec![f[..100].to_vec(), f[100..].to_vec()];
        let s2 = Arc::clone(&sim);
        sim.spawn("tx", move || {
            let pkt = new_com(
                ChainBufIo {
                    me: SelfRef::new(),
                    parts,
                },
                |o| &o.me,
            );
            tx_a.push(pkt as Arc<dyn BufIo>).unwrap();
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        assert_eq!(got.lock().len(), 1);
        let m = ma.meter.snapshot();
        assert_eq!(m.gathers, 0);
        assert_eq!(m.copies, 1);
        assert_eq!(m.bytes_copied, 314);
    }

    #[test]
    fn oversized_foreign_packet_is_rejected_not_panicked() {
        // A foreign component handing down a frame beyond MTU+header is a
        // caller bug, answered with Err(Inval) — not a kernel panic.
        let (sim, _ma, tx_a, _mb, got, _keep) = setup();
        sim.spawn("tx", move || {
            let pkt = VecBufIo::from_vec(vec![0u8; 3000]);
            assert!(matches!(
                tx_a.push(pkt as Arc<dyn BufIo>),
                Err(Error::Inval)
            ));
        });
        sim.run();
        assert_eq!(got.lock().len(), 0);
    }

    #[test]
    fn received_packets_arrive_as_mappable_bufio() {
        let (sim, _ma, tx_a, mb, got, _keep) = setup();
        let f = frame(b"zero-copy receive");
        let s2 = Arc::clone(&sim);
        sim.spawn("tx", move || {
            tx_a.push(VecBufIo::from_vec(f) as Arc<dyn BufIo>).unwrap();
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        let got = got.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0][14..], b"zero-copy receive");
        // Receive side never copied: the skbuff was wrapped, not read.
        assert_eq!(mb.meter.snapshot().bytes_copied, 0);
        // But it did cross the component boundary exactly once.
        assert_eq!(mb.meter.snapshot().crossings, 1);
    }
}
