//! Trap frames and trap vectors of the simulated x86 CPU.
//!
//! The paper (§6.2.10) stresses that the *layout* of trap frames is part of
//! the OSKit's documented interface: "we modified the OSKit's hardware
//! interrupt handler to use the same well-documented stack frame used for
//! synchronous traps."  Both synchronous traps and hardware interrupts in
//! this reproduction therefore present the single [`TrapFrame`] layout.

/// x86 trap vector numbers (the architecturally defined ones the kit
/// cares about).
pub mod vectors {
    /// Divide error (`#DE`).
    pub const DIVIDE: u8 = 0;
    /// Debug exception (`#DB`), used for single-step.
    pub const DEBUG: u8 = 1;
    /// Breakpoint (`#BP`, the `int3` instruction).
    pub const BREAKPOINT: u8 = 3;
    /// Invalid opcode (`#UD`).
    pub const INVALID_OPCODE: u8 = 6;
    /// Double fault (`#DF`).
    pub const DOUBLE_FAULT: u8 = 8;
    /// General protection fault (`#GP`).
    pub const GP_FAULT: u8 = 13;
    /// Page fault (`#PF`).
    pub const PAGE_FAULT: u8 = 14;
    /// Base vector where hardware IRQs are mapped (IRQ0 = 32).
    pub const IRQ_BASE: u8 = 32;
}

/// The saved processor state pushed on a trap: the OSKit's
/// `trap_state`, with the familiar 32-bit x86 register file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrapFrame {
    /// General registers, in `pusha` order.
    pub eax: u32,
    /// See [`TrapFrame::eax`].
    pub ecx: u32,
    /// See [`TrapFrame::eax`].
    pub edx: u32,
    /// See [`TrapFrame::eax`].
    pub ebx: u32,
    /// Stack pointer at trap time.
    pub esp: u32,
    /// Frame pointer.
    pub ebp: u32,
    /// See [`TrapFrame::eax`].
    pub esi: u32,
    /// See [`TrapFrame::eax`].
    pub edi: u32,
    /// Instruction pointer at trap time.
    pub eip: u32,
    /// Flags register.
    pub eflags: u32,
    /// Trap vector number.
    pub trapno: u8,
    /// Hardware error code (page faults, GP faults).
    pub err: u32,
    /// Faulting linear address (`%cr2`, page faults only).
    pub cr2: u32,
}

impl TrapFrame {
    /// Builds a frame for trap `trapno` at instruction `eip`.
    pub fn at(trapno: u8, eip: u32) -> TrapFrame {
        TrapFrame {
            trapno,
            eip,
            eflags: 0x202, // IF set, reserved bit 1 always set.
            ..TrapFrame::default()
        }
    }

    /// Reads a register by its GDB protocol number (the i386 register
    /// order used by the remote protocol: eax, ecx, edx, ebx, esp, ebp,
    /// esi, edi, eip, eflags, cs, ss, ds, es, fs, gs).
    pub fn gdb_reg(&self, n: usize) -> u32 {
        match n {
            0 => self.eax,
            1 => self.ecx,
            2 => self.edx,
            3 => self.ebx,
            4 => self.esp,
            5 => self.ebp,
            6 => self.esi,
            7 => self.edi,
            8 => self.eip,
            9 => self.eflags,
            10 => 0x08, // cs: the kit's flat kernel code segment.
            11..=15 => 0x10, // ss/ds/es/fs/gs: flat kernel data segment.
            _ => 0,
        }
    }

    /// Writes a register by GDB protocol number; segment registers are
    /// read-only in the flat model and are silently ignored.
    pub fn set_gdb_reg(&mut self, n: usize, v: u32) {
        match n {
            0 => self.eax = v,
            1 => self.ecx = v,
            2 => self.edx = v,
            3 => self.ebx = v,
            4 => self.esp = v,
            5 => self.ebp = v,
            6 => self.esi = v,
            7 => self.edi = v,
            8 => self.eip = v,
            9 => self.eflags = v,
            _ => {}
        }
    }

    /// Number of registers in the GDB i386 register file.
    pub const GDB_NUM_REGS: usize = 16;
}

/// Outcome of a trap handler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrapDisposition {
    /// The trap was handled; resume with the (possibly modified) frame.
    Handled,
    /// Pass to the next (default) handler.
    Chain,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdb_register_round_trip() {
        let mut f = TrapFrame::at(vectors::BREAKPOINT, 0x1000);
        for n in 0..10 {
            f.set_gdb_reg(n, 0x100 + n as u32);
        }
        for n in 0..10 {
            assert_eq!(f.gdb_reg(n), 0x100 + n as u32);
        }
    }

    #[test]
    fn segments_are_flat_model_constants() {
        let f = TrapFrame::default();
        assert_eq!(f.gdb_reg(10), 0x08);
        assert_eq!(f.gdb_reg(12), 0x10);
        let mut g = f;
        g.set_gdb_reg(10, 0xdead);
        assert_eq!(g.gdb_reg(10), 0x08);
    }

    #[test]
    fn frame_at_sets_interrupt_flag() {
        let f = TrapFrame::at(vectors::PAGE_FAULT, 0x42);
        assert_eq!(f.trapno, vectors::PAGE_FAULT);
        assert_eq!(f.eip, 0x42);
        assert_ne!(f.eflags & 0x200, 0);
    }
}
