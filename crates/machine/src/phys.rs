//! Simulated physical memory.
//!
//! A flat byte array standing in for the PC's RAM, with the layout quirks
//! OSKit components care about: the sub-1 MB "lower" region with its BIOS
//! and legacy holes, and the ISA DMA reachability limit at 16 MB (paper
//! §3.3: "only the first 16MB of physical memory on PCs is accessible to
//! the built-in DMA controller").

use parking_lot::Mutex;

/// Physical addresses are 32-bit on the simulated PC.
pub type PhysAddr = u32;

/// End of the legacy "lower memory" region (640 KB).
pub const LOWER_MEM_END: PhysAddr = 0xA_0000;

/// Start of "upper memory" above the ISA hole (1 MB).
pub const UPPER_MEM_START: PhysAddr = 0x10_0000;

/// ISA DMA controllers can only reach below this address (16 MB).
pub const DMA_LIMIT: PhysAddr = 0x100_0000;

/// Simulated RAM.
pub struct PhysMem {
    bytes: Mutex<Vec<u8>>,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed RAM.
    pub fn new(size: usize) -> PhysMem {
        PhysMem {
            bytes: Mutex::new(vec![0; size]),
        }
    }

    /// Total RAM size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.lock().len()
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access — the simulated analogue of a bus
    /// error, which is always a kernel bug.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mem = self.bytes.lock();
        let a = addr as usize;
        let end = a.checked_add(buf.len()).expect("phys read overflow");
        assert!(end <= mem.len(), "phys read beyond RAM: {addr:#x}+{}", buf.len());
        buf.copy_from_slice(&mem[a..end]);
    }

    /// Writes `buf` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn write(&self, addr: PhysAddr, buf: &[u8]) {
        let mut mem = self.bytes.lock();
        let a = addr as usize;
        let end = a.checked_add(buf.len()).expect("phys write overflow");
        assert!(end <= mem.len(), "phys write beyond RAM: {addr:#x}+{}", buf.len());
        mem[a..end].copy_from_slice(buf);
    }

    /// Reads a little-endian `u32` (the x86 is little-endian).
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&self, addr: PhysAddr, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: PhysAddr) -> u16 {
        let mut b = [0u8; 2];
        self.read(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&self, addr: PhysAddr, value: u16) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Writes one byte.
    pub fn write_u8(&self, addr: PhysAddr, value: u8) {
        self.write(addr, &[value]);
    }

    /// Fills `[addr, addr+len)` with `value`.
    pub fn fill(&self, addr: PhysAddr, len: usize, value: u8) {
        let mut mem = self.bytes.lock();
        let a = addr as usize;
        let end = a.checked_add(len).expect("phys fill overflow");
        assert!(end <= mem.len(), "phys fill beyond RAM");
        mem[a..end].fill(value);
    }

    /// Runs `f` over a read-only view of `[addr, addr+len)` without an
    /// intermediate copy.
    pub fn with_slice<R>(&self, addr: PhysAddr, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        let mem = self.bytes.lock();
        let a = addr as usize;
        let end = a.checked_add(len).expect("phys slice overflow");
        assert!(end <= mem.len(), "phys slice beyond RAM");
        f(&mem[a..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let m = PhysMem::new(1024);
        m.write(100, &[1, 2, 3, 4]);
        let mut b = [0u8; 4];
        m.read(100, &mut b);
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn typed_accessors_are_little_endian() {
        let m = PhysMem::new(64);
        m.write_u32(0, 0x1234_5678);
        assert_eq!(m.read_u8(0), 0x78);
        assert_eq!(m.read_u8(3), 0x12);
        assert_eq!(m.read_u16(0), 0x5678);
        assert_eq!(m.read_u32(0), 0x1234_5678);
    }

    #[test]
    #[should_panic(expected = "beyond RAM")]
    fn out_of_range_is_a_bus_error() {
        let m = PhysMem::new(16);
        m.read_u32(14);
    }

    #[test]
    fn fill_and_slice() {
        let m = PhysMem::new(32);
        m.fill(8, 8, 0xAB);
        m.with_slice(8, 8, |s| assert!(s.iter().all(|&b| b == 0xAB)));
        assert_eq!(m.read_u8(7), 0);
        assert_eq!(m.read_u8(16), 0);
    }

    #[test]
    fn layout_constants() {
        assert_eq!(LOWER_MEM_END, 640 * 1024);
        assert_eq!(UPPER_MEM_START, 1024 * 1024);
        assert_eq!(DMA_LIMIT, 16 * 1024 * 1024);
    }
}
