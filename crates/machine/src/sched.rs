//! The co-simulation scheduler: virtual time, events, and process threads.
//!
//! The OSKit's encapsulated components assume the classic two-level
//! execution model (paper §4.7.4): "There can be many process-level threads
//! of control using separate stacks, but only one can run at a time and
//! context switches only occur at well-defined 'blocking' points;
//! interrupt-level activities can run any time interrupts are enabled and
//! always run to completion without blocking."
//!
//! This scheduler *enforces* that model while running components as real
//! host threads:
//!
//! * **Process level** — host threads spawned with [`Sim::spawn`] share a
//!   single run token; exactly one executes at a time, and the token only
//!   changes hands at blocking points ([`Sim::block_current`], used by
//!   osenv sleep records) or explicit yields.
//! * **Interrupt level** — scheduled [`Sim::at`] events run to completion
//!   on a borrowed stack whenever a process thread blocks; an event that
//!   tries to block panics, catching model violations at test time.
//! * **Virtual time** — a global event clock plus per-machine CPU clocks
//!   (see [`crate::Machine`]) drive all timing; no wall-clock sleeps occur
//!   anywhere.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::Arc;

/// Virtual nanoseconds since simulation start.
pub type Ns = u64;

/// Identifies a process-level thread within a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Tid(usize);

/// Identifies a scheduled event, for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventId(u64);

type Action = Box<dyn FnOnce() + Send>;

struct Event {
    time: Ns,
    seq: u64,
    id: EventId,
    action: Action,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among equal timestamps.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// Holds the run token.
    Running,
    /// In the ready queue, waiting for the token.
    Ready,
    /// Blocked at a sleep point.
    Blocked,
    /// Exited.
    Dead,
}

struct Slot {
    name: String,
    state: ThreadState,
}

struct Inner {
    time: Ns,
    seq: u64,
    next_event_id: u64,
    events: BinaryHeap<Event>,
    cancelled: std::collections::HashSet<u64>,
    ready: VecDeque<Tid>,
    slots: Vec<Slot>,
    /// Process threads that have not exited (excludes the harness slot 0).
    alive: usize,
    /// Set when any thread or event panicked, or on deadlock.
    failure: Option<String>,
    /// True while an event action is executing (interrupt level).
    in_event: bool,
    /// Virtual-time runaway guard.
    time_limit: Ns,
}

/// The simulation kernel shared by all machines of one experiment.
pub struct Sim {
    inner: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

impl Sim {
    /// Creates a simulation with a default virtual-time limit of 1000
    /// virtual seconds (a runaway guard; see [`Sim::set_time_limit`]).
    pub fn new() -> Arc<Sim> {
        Arc::new(Sim {
            inner: Mutex::new(Inner {
                time: 0,
                seq: 0,
                next_event_id: 0,
                events: BinaryHeap::new(),
                cancelled: std::collections::HashSet::new(),
                ready: VecDeque::new(),
                // Slot 0 is the harness thread that calls `run`.
                slots: vec![Slot {
                    name: "harness".into(),
                    state: ThreadState::Running,
                }],
                alive: 0,
                failure: None,
                in_event: false,
                time_limit: 1_000_000_000_000,
            }),
            cv: Condvar::new(),
        })
    }

    /// Raises or lowers the virtual-time runaway guard.
    pub fn set_time_limit(&self, limit: Ns) {
        self.lock().time_limit = limit;
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock()
    }

    /// Returns the global event clock.
    ///
    /// Per-machine CPU clocks (which include charged processing costs) are
    /// kept by [`crate::Machine`]; this is the floor established by
    /// dispatched events.
    pub fn now(&self) -> Ns {
        self.lock().time
    }

    /// Returns the calling thread's [`Tid`], if it is a sim thread.
    pub fn current_tid() -> Option<Tid> {
        CURRENT.with(|c| c.get().map(Tid))
    }

    /// Spawns a process-level thread.
    ///
    /// The thread starts in the ready queue and first runs when the token
    /// reaches it (i.e. once [`Sim::run`] is underway or a running thread
    /// blocks).
    pub fn spawn(
        self: &Arc<Self>,
        name: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Tid {
        let name = name.into();
        let tid = {
            let mut inner = self.lock();
            let tid = Tid(inner.slots.len());
            inner.slots.push(Slot {
                name: name.clone(),
                state: ThreadState::Ready,
            });
            inner.ready.push_back(tid);
            inner.alive += 1;
            tid
        };
        let sim = Arc::clone(self);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || sim.thread_main(tid, f))
            .expect("spawn failed");
        tid
    }

    fn thread_main(self: Arc<Self>, tid: Tid, f: impl FnOnce() + Send) {
        CURRENT.with(|c| c.set(Some(tid.0)));
        // Wait for the token before running the body.
        {
            let inner = self.lock();
            if self.park_until_running(inner, tid).is_err() {
                return; // Simulation failed before we first ran.
            }
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        let mut inner = self.lock();
        inner.alive -= 1;
        if let Err(p) = result {
            let msg = panic_message(p.as_ref());
            if inner.failure.is_none() {
                inner.failure = Some(format!(
                    "thread '{}' panicked: {msg}",
                    inner.slots[tid.0].name
                ));
            }
            self.fail_all(&mut inner);
        }
        inner.slots[tid.0].state = ThreadState::Dead;
        if inner.alive == 0 {
            // Wake the harness.
            Self::make_ready(&mut inner, Tid(0));
        }
        self.pass_token(inner);
    }

    /// Runs the simulation to completion: returns when every spawned
    /// process thread has exited.
    ///
    /// Must be called from the thread that created the `Sim` (the harness),
    /// which logically holds the token between `spawn` calls.
    ///
    /// # Panics
    ///
    /// Propagates the first panic from any process thread or event, and
    /// panics on deadlock (all threads blocked with no pending events) or
    /// when virtual time exceeds the configured limit.
    pub fn run(&self) {
        let mut inner = self.lock();
        if inner.alive == 0 && inner.failure.is_none() {
            return;
        }
        inner.slots[0].state = ThreadState::Blocked;
        drop(inner);
        self.pass_token(self.lock());
        let inner = self.lock();
        let _ = self.park_until_running(inner, Tid(0));
        let mut inner = self.lock();
        if let Some(msg) = inner.failure.take() {
            drop(inner);
            panic!("simulation failed: {msg}");
        }
    }

    /// Schedules `action` to run at interrupt level `delay` ns after the
    /// current event clock.
    pub fn at(&self, delay: Ns, action: impl FnOnce() + Send + 'static) -> EventId {
        self.at_abs_time(None, delay, action)
    }

    /// Schedules `action` at the absolute virtual time `time` (clamped to
    /// the current event clock if already past).
    pub fn at_abs(&self, time: Ns, action: impl FnOnce() + Send + 'static) -> EventId {
        self.at_abs_time(Some(time), 0, action)
    }

    fn at_abs_time(
        &self,
        abs: Option<Ns>,
        delay: Ns,
        action: impl FnOnce() + Send + 'static,
    ) -> EventId {
        let mut inner = self.lock();
        let time = match abs {
            Some(t) => t.max(inner.time),
            None => inner.time + delay,
        };
        inner.seq += 1;
        inner.next_event_id += 1;
        let id = EventId(inner.next_event_id);
        let seq = inner.seq;
        inner.events.push(Event {
            time,
            seq,
            id,
            action: Box::new(action),
        });
        id
    }

    /// Cancels a scheduled event.  A no-op if it already ran.
    pub fn cancel(&self, id: EventId) {
        self.lock().cancelled.insert(id.0);
    }

    /// Blocks the calling process thread until another context calls
    /// [`Sim::wake`] on it.
    ///
    /// This is the single well-defined blocking point of the execution
    /// model; osenv sleep records are built on it.
    ///
    /// # Panics
    ///
    /// Panics when called from interrupt level (inside an event action) —
    /// interrupt-level activities "always run to completion without
    /// blocking" (paper §4.7.4).
    pub fn block_current(&self) {
        let tid = Tid(CURRENT.with(|c| c.get()).expect("block outside sim thread"));
        let mut inner = self.lock();
        assert!(
            !inner.in_event,
            "execution-model violation: blocking at interrupt level"
        );
        inner.slots[tid.0].state = ThreadState::Blocked;
        drop(inner);
        self.pass_token(self.lock());
        let inner = self.lock();
        if self.park_until_running(inner, tid).is_err() {
            panic!("simulation failed while blocked");
        }
    }

    /// Marks `tid` runnable.  Control does *not* transfer immediately; the
    /// thread runs when the token next reaches it.
    pub fn wake(&self, tid: Tid) {
        let mut inner = self.lock();
        Self::make_ready(&mut inner, tid);
    }

    /// Yields the token: lets every other ready thread (and any due event)
    /// run before the caller continues.
    pub fn yield_now(&self) {
        let tid = Tid(CURRENT.with(|c| c.get()).expect("yield outside sim thread"));
        let mut inner = self.lock();
        assert!(!inner.in_event, "yield at interrupt level");
        if !inner.ready.is_empty() {
            inner.slots[tid.0].state = ThreadState::Blocked;
            Self::make_ready(&mut inner, tid);
            drop(inner);
            self.pass_token(self.lock());
            let inner = self.lock();
            if self.park_until_running(inner, tid).is_err() {
                panic!("simulation failed while yielding");
            }
        } else if !inner.events.is_empty() {
            // No other thread wants the token: advance time by dispatching
            // the earliest event inline instead of spinning forever.
            let (inner, _) = self.dispatch_one_event(inner);
            if inner.failure.is_some() {
                drop(inner);
                panic!("simulation failed while yielding");
            }
        }
    }

    /// Pops and runs the earliest non-cancelled event, advancing virtual
    /// time.  Returns whether an event ran.  On event panic or time-limit
    /// overrun, records a failure.
    fn dispatch_one_event<'a>(
        &'a self,
        mut inner: MutexGuard<'a, Inner>,
    ) -> (MutexGuard<'a, Inner>, bool) {
        let ev = loop {
            match inner.events.pop() {
                Some(ev) if inner.cancelled.remove(&ev.id.0) => continue,
                other => break other,
            }
        };
        let Some(ev) = ev else {
            return (inner, false);
        };
        inner.time = inner.time.max(ev.time);
        if inner.time > inner.time_limit {
            if inner.failure.is_none() {
                inner.failure = Some(format!("virtual time limit exceeded at {} ns", inner.time));
            }
            self.fail_all(&mut inner);
            return (inner, true);
        }
        inner.in_event = true;
        drop(inner);
        let result = catch_unwind(AssertUnwindSafe(ev.action));
        let mut inner = self.lock();
        inner.in_event = false;
        if let Err(p) = result {
            let msg = panic_message(p.as_ref());
            if inner.failure.is_none() {
                inner.failure = Some(format!("event panicked: {msg}"));
            }
            self.fail_all(&mut inner);
        }
        (inner, true)
    }

    /// Runs pending work while the caller spins: dispatches the earliest
    /// event or lets another ready thread run.
    ///
    /// Used by polling loops such as the single-threaded sleep
    /// implementation of paper §4.7.6 ("sleeping is implemented simply as a
    /// busy loop that spins on a one-bit field in the sleep record").
    pub fn relax(&self) {
        self.yield_now();
    }

    fn make_ready(inner: &mut Inner, tid: Tid) {
        if inner.slots[tid.0].state == ThreadState::Blocked {
            inner.slots[tid.0].state = ThreadState::Ready;
            inner.ready.push_back(tid);
        }
    }

    /// Hands the run token to the next ready thread, dispatching events
    /// until one becomes ready.  The caller must have already moved itself
    /// out of `Running`.
    fn pass_token<'a>(&'a self, mut inner: MutexGuard<'a, Inner>) {
        loop {
            if inner.failure.is_some() {
                self.fail_all(&mut inner);
                return;
            }
            if let Some(next) = inner.ready.pop_front() {
                inner.slots[next.0].state = ThreadState::Running;
                drop(inner);
                self.cv.notify_all();
                return;
            }
            // No thread is ready: advance virtual time to the next event.
            let (guard, ran) = self.dispatch_one_event(inner);
            inner = guard;
            if ran {
                continue;
            }
            if inner.alive == 0 {
                // Normal completion: nothing left to run but the harness.
                if inner.slots[0].state != ThreadState::Blocked {
                    // The harness is not inside `run`; it conceptually
                    // holds the token already.
                    return;
                }
                Self::make_ready(&mut inner, Tid(0));
                continue;
            }
            let stuck: Vec<_> = inner
                .slots
                .iter()
                .filter(|s| s.state == ThreadState::Blocked)
                .map(|s| s.name.clone())
                .collect();
            inner.failure = Some(format!(
                "deadlock: all threads blocked with no pending events: {stuck:?}"
            ));
        }
    }

    /// Parks until this thread holds the token.  Returns `Err` if the
    /// simulation failed instead.
    fn park_until_running(
        &self,
        mut inner: MutexGuard<'_, Inner>,
        tid: Tid,
    ) -> Result<(), ()> {
        loop {
            if inner.failure.is_some() {
                return Err(());
            }
            if inner.slots[tid.0].state == ThreadState::Running {
                return Ok(());
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Wakes every parked thread so they can observe the failure and exit.
    fn fail_all(&self, _inner: &mut Inner) {
        self.cv.notify_all();
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

/// A one-waiter wakeup channel: the OSKit's *sleep record* (paper §4.7.6).
///
/// "A 'sleep record' ... is like a condition variable except that only one
/// thread of control can wait on it at a time."  Signals are sticky: a
/// signal delivered before the wait completes is not lost.
pub struct SleepRecord {
    state: Mutex<SleepState>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SleepState {
    Idle,
    Waiting(Tid),
    Signaled,
}

/// Why a [`SleepRecord::wait_timeout`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeReason {
    /// The record was signaled.
    Signaled,
    /// The timeout expired first.
    TimedOut,
}

impl Default for SleepRecord {
    fn default() -> Self {
        Self::new()
    }
}

impl SleepRecord {
    /// Creates an unsignaled sleep record.
    pub fn new() -> Self {
        SleepRecord {
            state: Mutex::new(SleepState::Idle),
        }
    }

    /// Blocks the calling process thread until [`SleepRecord::signal`].
    ///
    /// # Panics
    ///
    /// Panics if another thread is already waiting (one waiter only), or if
    /// called at interrupt level.
    pub fn wait(&self, sim: &Sim) {
        let me = Sim::current_tid().expect("sleep outside sim thread");
        {
            let mut st = self.state.lock();
            match *st {
                SleepState::Signaled => {
                    *st = SleepState::Idle;
                    return;
                }
                SleepState::Idle => *st = SleepState::Waiting(me),
                SleepState::Waiting(_) => panic!("sleep record already has a waiter"),
            }
        }
        sim.block_current();
        let mut st = self.state.lock();
        debug_assert_eq!(*st, SleepState::Signaled);
        *st = SleepState::Idle;
    }

    /// Like [`SleepRecord::wait`] but gives up after `timeout` ns.
    pub fn wait_timeout(self: &Arc<Self>, sim: &Arc<Sim>, timeout: Ns) -> WakeReason {
        let me = Sim::current_tid().expect("sleep outside sim thread");
        {
            let mut st = self.state.lock();
            match *st {
                SleepState::Signaled => {
                    *st = SleepState::Idle;
                    return WakeReason::Signaled;
                }
                SleepState::Idle => *st = SleepState::Waiting(me),
                SleepState::Waiting(_) => panic!("sleep record already has a waiter"),
            }
        }
        let rec = Arc::clone(self);
        let sim2 = Arc::clone(sim);
        let ev = sim.at(timeout, move || {
            let st = rec.state.lock();
            if *st == SleepState::Waiting(me) {
                // Leave the state as-is; the waiter distinguishes timeout
                // from signal by inspecting it after waking.
                sim2.wake(me);
            }
        });
        sim.block_current();
        let mut st = self.state.lock();
        match *st {
            SleepState::Signaled => {
                *st = SleepState::Idle;
                sim.cancel(ev);
                WakeReason::Signaled
            }
            SleepState::Waiting(t) if t == me => {
                *st = SleepState::Idle;
                WakeReason::TimedOut
            }
            other => panic!("sleep record in unexpected state {other:?}"),
        }
    }

    /// Signals the record, waking the waiter if present; otherwise the
    /// signal is remembered for the next wait.
    pub fn signal(&self, sim: &Sim) {
        let mut st = self.state.lock();
        match *st {
            SleepState::Waiting(tid) => {
                *st = SleepState::Signaled;
                drop(st);
                sim.wake(tid);
            }
            SleepState::Idle => *st = SleepState::Signaled,
            SleepState::Signaled => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn events_run_in_time_order() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (delay, tag) in [(30u64, 3), (10, 1), (20, 2)] {
            let order = Arc::clone(&order);
            sim.at(delay, move || order.lock().push(tag));
        }
        let o2 = Arc::clone(&order);
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            // Block until all three events have fired.
            let rec = Arc::new(SleepRecord::new());
            let r2 = Arc::clone(&rec);
            let s3 = Arc::clone(&s2);
            s2.at(40, move || r2.signal(&s3));
            rec.wait(&s2);
            assert_eq!(*o2.lock(), vec![1, 2, 3]);
        });
        sim.run();
        assert!(sim.now() >= 40);
    }

    #[test]
    fn equal_times_run_fifo() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..8 {
            let order = Arc::clone(&order);
            sim.at(5, move || order.lock().push(tag));
        }
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let rec = Arc::new(SleepRecord::new());
            let r2 = Arc::clone(&rec);
            let s3 = Arc::clone(&s2);
            s2.at(6, move || r2.signal(&s3));
            rec.wait(&s2);
        });
        sim.run();
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sleep_record_signal_before_wait_is_sticky() {
        let sim = Sim::new();
        let rec = Arc::new(SleepRecord::new());
        rec.signal(&sim);
        let s2 = Arc::clone(&sim);
        let r2 = Arc::clone(&rec);
        sim.spawn("t", move || {
            r2.wait(&s2); // Must not block: signal was remembered.
        });
        sim.run();
    }

    #[test]
    fn two_threads_ping_pong() {
        let sim = Sim::new();
        let a = Arc::new(SleepRecord::new());
        let b = Arc::new(SleepRecord::new());
        let count = Arc::new(AtomicUsize::new(0));

        let (s1, a1, b1, c1) = (sim.clone(), a.clone(), b.clone(), count.clone());
        sim.spawn("ping", move || {
            for _ in 0..100 {
                b1.signal(&s1);
                a1.wait(&s1);
                c1.fetch_add(1, Ordering::SeqCst);
            }
            b1.signal(&s1);
        });
        let (s2, a2, b2, c2) = (sim.clone(), a.clone(), b.clone(), count.clone());
        sim.spawn("pong", move || {
            for _ in 0..100 {
                b2.wait(&s2);
                a2.signal(&s2);
                c2.fetch_add(1, Ordering::SeqCst);
            }
        });
        sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn wait_timeout_times_out() {
        let sim = Sim::new();
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let rec = Arc::new(SleepRecord::new());
            let why = rec.wait_timeout(&s2, 1_000);
            assert_eq!(why, WakeReason::TimedOut);
            assert!(s2.now() >= 1_000);
        });
        sim.run();
    }

    #[test]
    fn wait_timeout_signal_wins() {
        let sim = Sim::new();
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let rec = Arc::new(SleepRecord::new());
            let r2 = Arc::clone(&rec);
            let s3 = Arc::clone(&s2);
            s2.at(10, move || r2.signal(&s3));
            let why = rec.wait_timeout(&s2, 1_000_000);
            assert_eq!(why, WakeReason::Signaled);
            assert!(s2.now() < 1_000_000);
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        let s2 = Arc::clone(&sim);
        sim.spawn("stuck", move || {
            let rec = Arc::new(SleepRecord::new());
            rec.wait(&s2); // Nobody will ever signal.
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates_to_run() {
        let sim = Sim::new();
        sim.spawn("bad", || panic!("boom"));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "blocking at interrupt level")]
    fn blocking_in_event_is_a_model_violation() {
        let sim = Sim::new();
        let s2 = Arc::clone(&sim);
        let s3 = Arc::clone(&sim);
        sim.at(1, move || {
            s3.block_current();
        });
        sim.spawn("t", move || {
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 100);
        });
        sim.run();
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let ev = sim.at(10, move || {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        sim.cancel(ev);
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let rec = Arc::new(SleepRecord::new());
            let _ = rec.wait_timeout(&s2, 100);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn yield_lets_events_and_threads_run() {
        let sim = Sim::new();
        let progressed = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&progressed);
        sim.at(5, move || {
            p2.store(1, Ordering::SeqCst);
        });
        let s2 = Arc::clone(&sim);
        let p3 = Arc::clone(&progressed);
        sim.spawn("spinner", move || {
            while p3.load(Ordering::SeqCst) == 0 {
                s2.relax();
            }
        });
        sim.run();
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "virtual time limit")]
    fn runaway_time_is_caught() {
        let sim = Sim::new();
        sim.set_time_limit(1_000);
        // A self-rearming event with a blocked thread: time runs away.
        fn rearm(sim: Arc<Sim>) {
            let s2 = Arc::clone(&sim);
            sim.at(100, move || rearm(s2));
        }
        rearm(Arc::clone(&sim));
        let s2 = Arc::clone(&sim);
        sim.spawn("stuck", move || {
            let rec = Arc::new(SleepRecord::new());
            rec.wait(&s2);
        });
        sim.run();
    }

    #[test]
    fn run_with_no_threads_returns_immediately() {
        let sim = Sim::new();
        sim.at(10, || {});
        sim.run();
        assert_eq!(sim.now(), 0); // Events without threads never run.
    }
}
