//! The simulated PC: RAM, interrupt controller, CPU clock and accounting.

use crate::costs::{CostModel, WorkMeter};
use crate::irq::IrqController;
use crate::phys::PhysMem;
use crate::sched::{EventId, Ns, Sim};
use oskit_fault::FaultInjector;
use oskit_trace::{BoundaryId, EventKind, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One simulated machine (one "PC" of the paper's two-machine testbed).
///
/// A machine owns its physical memory, interrupt controller, cost meters
/// and a **CPU clock**: virtual time consumed by code logically executing
/// on this machine.  The clock advances when components charge work
/// ([`Machine::charge_copy`] and friends) and is pulled forward to the
/// global event clock whenever an event (packet arrival, disk completion)
/// is delivered to the machine.
pub struct Machine {
    /// Machine name, for diagnostics ("sender", "receiver", ...).
    pub name: String,
    /// The simulation this machine belongs to.
    pub sim: Arc<Sim>,
    /// Simulated RAM.
    pub phys: PhysMem,
    /// The interrupt controller.
    pub irq: Arc<IrqController>,
    /// Rates converting mechanical work to virtual time.
    pub costs: CostModel,
    /// Counters of mechanical work performed.
    pub meter: WorkMeter,
    /// Per-boundary structured trace (zero-sized no-op unless the
    /// `trace` feature is enabled).
    tracer: Tracer,
    /// Scripted fault schedules (zero-sized no-op unless the `fault`
    /// feature is enabled).
    faults: FaultInjector,
    clock: AtomicU64,
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of RAM and default costs.
    pub fn new(sim: &Arc<Sim>, name: impl Into<String>, mem_size: usize) -> Arc<Machine> {
        Self::with_costs(sim, name, mem_size, CostModel::default())
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_costs(
        sim: &Arc<Sim>,
        name: impl Into<String>,
        mem_size: usize,
        costs: CostModel,
    ) -> Arc<Machine> {
        Arc::new(Machine {
            name: name.into(),
            sim: Arc::clone(sim),
            phys: PhysMem::new(mem_size),
            irq: Arc::new(IrqController::new()),
            costs,
            meter: WorkMeter::default(),
            tracer: Tracer::new(),
            faults: FaultInjector::new(),
            clock: AtomicU64::new(0),
        })
    }

    /// This machine's tracer: per-boundary refinement of [`Machine::meter`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// This machine's fault injector: the device models consult it at
    /// every fault point, and a kernel installs a
    /// [`FaultPlan`](oskit_fault::FaultPlan) on it to script faults.
    /// Inert (all decisions "no fault") until a plan is installed.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// This machine's CPU clock: the virtual time up to which its
    /// processor has been busy.
    pub fn clock(&self) -> Ns {
        self.clock.load(Ordering::Relaxed)
    }

    /// Pulls the CPU clock forward to at least `t` (an event was delivered
    /// at global time `t`; the CPU cannot have acted on it earlier).
    pub fn observe(&self, t: Ns) {
        self.clock.fetch_max(t, Ordering::Relaxed);
    }

    /// Advances the CPU clock by `ns` of processing.
    pub fn advance(&self, ns: Ns) {
        self.clock.fetch_add(ns, Ordering::Relaxed);
    }

    /// The time at which work started *now* would be scheduled: the later
    /// of this CPU's clock and the global event clock.
    pub fn cpu_now(&self) -> Ns {
        self.clock().max(self.sim.now())
    }

    /// Schedules `action` at `delay` ns after [`Machine::cpu_now`],
    /// observing the dispatch time on this machine's clock first.
    pub fn at_cpu(
        self: &Arc<Self>,
        delay: Ns,
        action: impl FnOnce(&Arc<Machine>) + Send + 'static,
    ) -> EventId {
        let when = self.cpu_now() + delay;
        let m = Arc::clone(self);
        self.sim.at_abs(when, move || {
            m.observe(m.sim.now());
            action(&m);
        })
    }

    /// Charges a memory copy of `bytes` bytes: advances the CPU clock and
    /// records the copy in the meter.
    ///
    /// Every `memcpy` performed by driver, glue, or protocol code calls
    /// this, so the copy counts behind Table 1's send/receive asymmetry
    /// are measured, not asserted.  Un-attributed variant of
    /// [`Machine::charge_copy_at`]: the trace books the copy on the
    /// reserved `machine::unattributed` boundary.
    pub fn charge_copy(&self, bytes: usize) {
        self.charge_copy_at(BoundaryId::UNATTRIBUTED, bytes);
    }

    /// Charges a memory copy of `bytes` bytes, attributed to `boundary`.
    ///
    /// The aggregate [`Machine::meter`] and the CPU clock advance exactly
    /// as in [`Machine::charge_copy`]; only the trace gains per-boundary
    /// detail, so attributing a call site never changes Table 1 numbers.
    pub fn charge_copy_at(&self, boundary: BoundaryId, bytes: usize) {
        self.meter.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
        self.meter.copies.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.copy_ns(bytes));
        self.tracer.record(
            boundary,
            EventKind::Copy {
                bytes: bytes as u64,
            },
            self.clock(),
        );
    }

    /// Charges a scatter-gather hand-off of `bytes` bytes in `fragments`
    /// fragments.  Un-attributed variant of
    /// [`Machine::charge_gather_at`].
    pub fn charge_gather(&self, bytes: usize, fragments: usize) {
        self.charge_gather_at(BoundaryId::UNATTRIBUTED, bytes, fragments);
    }

    /// Charges a scatter-gather hand-off, attributed to `boundary`.
    ///
    /// The CPU programs one DMA descriptor per fragment
    /// ([`CostModel::sg_frag_ns`] each); the bytes themselves are moved
    /// by the gathering hardware, so no copy time and no `bytes_copied`
    /// are charged.  This is what an SG-capable driver pays where a
    /// contiguous-only driver pays [`Machine::charge_copy_at`].
    pub fn charge_gather_at(&self, boundary: BoundaryId, bytes: usize, fragments: usize) {
        self.meter
            .bytes_gathered
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.meter.gathers.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.sg_frag_ns * fragments as u64);
        self.tracer.record(
            boundary,
            EventKind::Gather {
                bytes: bytes as u64,
            },
            self.clock(),
        );
    }

    /// Charges a checksum pass over `bytes` bytes.
    pub fn charge_checksum(&self, bytes: usize) {
        self.meter
            .bytes_checksummed
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.advance(self.costs.checksum_ns(bytes));
    }

    /// Charges one component-boundary crossing (COM dispatch plus glue
    /// prologue/epilogue) — the per-call price of separability that
    /// dominates Table 2's latency overhead.  Un-attributed variant of
    /// [`Machine::charge_crossing_at`].
    pub fn charge_crossing(&self) {
        self.charge_crossing_at(BoundaryId::UNATTRIBUTED);
    }

    /// Charges one component-boundary crossing, attributed to `boundary`.
    pub fn charge_crossing_at(&self, boundary: BoundaryId) {
        self.meter.crossings.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.crossing_ns);
        self.tracer
            .record(boundary, EventKind::Crossing, self.clock());
    }

    /// Charges one layer of per-packet protocol processing.
    pub fn charge_layer(&self) {
        self.advance(self.costs.per_layer_ns);
    }

    /// Charges the fixed cost of taking a hardware interrupt.
    /// Un-attributed variant of [`Machine::charge_irq_at`].
    pub fn charge_irq(&self) {
        self.charge_irq_at(BoundaryId::UNATTRIBUTED);
    }

    /// Charges the fixed cost of taking a hardware interrupt, attributed
    /// to `boundary`.
    pub fn charge_irq_at(&self, boundary: BoundaryId) {
        self.meter.irqs.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.irq_ns);
        self.tracer.record(boundary, EventKind::Irq, self.clock());
    }

    /// Notes that an interrupt just charged was a *receive* interrupt —
    /// bumps the `rx_irqs` refinement counter without touching the clock
    /// (the [`Machine::charge_irq_at`] already paid for it).
    pub fn note_rx_irq(&self) {
        self.meter.rx_irqs.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges one budgeted poll dispatch that delivered `frames` frames,
    /// attributed to `boundary`.
    ///
    /// This is the NAPI bargain made explicit in the cost model: the CPU
    /// pays [`CostModel::poll_ns`] once per *batch* where the
    /// interrupt-per-frame path pays [`CostModel::irq_ns`] per *frame*.
    /// The per-frame protocol and glue work is still charged by whoever
    /// consumes the frames — this prices only the dispatch.
    pub fn charge_rx_poll_at(&self, boundary: BoundaryId, frames: u64) {
        self.meter.rx_polls.fetch_add(1, Ordering::Relaxed);
        self.meter
            .rx_batch_frames
            .fetch_add(frames, Ordering::Relaxed);
        self.advance(self.costs.poll_ns);
        self.tracer
            .record(boundary, EventKind::Poll { frames }, self.clock());
    }

    /// Records a trace event at `boundary` without charging any work —
    /// used for observations that have no cost-model price of their own
    /// (allocations, sleeps, wakeups reported by the osenv).
    pub fn trace_note(&self, boundary: BoundaryId, kind: EventKind) {
        self.tracer.record(boundary, kind, self.clock());
    }

    /// Notes a buffer-cache hit at `boundary`.
    ///
    /// Bookkeeping only: a hit costs no device I/O and no copy, so the
    /// clock is untouched — the whole point of the cache is that the
    /// virtual-time price of the avoided `blkio` read never gets paid.
    pub fn note_cache_hit_at(&self, boundary: BoundaryId) {
        self.meter.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.tracer.count(boundary, EventKind::CacheHit);
    }

    /// Notes a buffer-cache miss at `boundary` (the fill's device read is
    /// charged by the backing `blkio` itself).
    pub fn note_cache_miss_at(&self, boundary: BoundaryId) {
        self.meter.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.tracer.count(boundary, EventKind::CacheMiss);
    }

    /// Notes a buffer-cache eviction at `boundary` (any dirty write-back
    /// is charged by the backing `blkio` itself).
    pub fn note_cache_evict_at(&self, boundary: BoundaryId) {
        self.meter.cache_evictions.fetch_add(1, Ordering::Relaxed);
        self.tracer.count(boundary, EventKind::CacheEvict);
    }

    /// Opens a profiling span at `boundary`: until the returned guard is
    /// dropped, all virtual time this machine's clock advances is
    /// attributed to the boundary's `vtime_ns` metric.
    ///
    /// Spans observe — they never charge — so wrapping a glue seam in a
    /// span leaves every meter and Table 1/2 number unchanged.
    pub fn span(&self, boundary: BoundaryId) -> BoundarySpan<'_> {
        BoundarySpan {
            machine: self,
            boundary,
            entry: self.clock(),
        }
    }
}

/// RAII guard from [`Machine::span`], attributing elapsed virtual time
/// to a boundary when dropped.
pub struct BoundarySpan<'a> {
    machine: &'a Machine,
    boundary: BoundaryId,
    entry: Ns,
}

impl Drop for BoundarySpan<'_> {
    fn drop(&mut self) {
        let elapsed = self.machine.clock().saturating_sub(self.entry);
        self.machine.tracer.add_vtime(self.boundary, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_charges() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.charge_copy(25_000); // 1 ms at 25 MB/s.
        assert_eq!(m.clock(), 1_000_000);
        m.charge_crossing();
        assert_eq!(m.clock(), 1_000_500);
    }

    #[test]
    fn observe_never_moves_clock_backwards() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.advance(500);
        m.observe(100);
        assert_eq!(m.clock(), 500);
        m.observe(900);
        assert_eq!(m.clock(), 900);
    }

    #[test]
    fn at_cpu_runs_after_charged_work() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.advance(10_000); // CPU is busy until t=10 µs.
        let m2 = Arc::clone(&m);
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let done = Arc::new(crate::sched::SleepRecord::new());
            let d2 = Arc::clone(&done);
            let s3 = Arc::clone(&s2);
            m2.at_cpu(5, move |m| {
                // The event fires at cpu_now() + 5, not sim.now() + 5.
                assert!(m.sim.now() >= 10_005);
                d2.signal(&s3);
            });
            done.wait(&s2);
        });
        sim.run();
    }

    #[test]
    fn attributed_charges_keep_aggregates_identical() {
        let sim = Sim::new();
        let plain = Machine::new(&sim, "plain", 4096);
        let attributed = Machine::new(&sim, "attr", 4096);
        let b = oskit_trace::boundary!("machine-test", "seam");

        plain.charge_copy(100);
        plain.charge_crossing();
        plain.charge_irq();
        attributed.charge_copy_at(b, 100);
        attributed.charge_crossing_at(b);
        attributed.charge_irq_at(b);

        // Attribution is free: meters and clocks match exactly.
        assert_eq!(plain.meter.snapshot(), attributed.meter.snapshot());
        assert_eq!(plain.clock(), attributed.clock());

        if Tracer::enabled() {
            let m = *attributed
                .tracer()
                .metrics()
                .get("machine-test", "seam")
                .unwrap();
            assert_eq!((m.copies, m.bytes_copied, m.crossings, m.irqs), (1, 100, 1, 1));
            // The plain machine booked everything as unattributed.
            let u = *plain
                .tracer()
                .metrics()
                .get("machine", "unattributed")
                .unwrap();
            assert_eq!((u.copies, u.crossings, u.irqs), (1, 1, 1));
        }
    }

    #[test]
    fn span_attributes_vtime_without_charging() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let b = oskit_trace::boundary!("machine-test", "span_seam");
        let before = m.meter.snapshot();
        {
            let _span = m.span(b);
            m.charge_copy(25_000); // 1 ms at 25 MB/s
        }
        let after = m.meter.snapshot();
        // The span itself charged nothing beyond the copy.
        assert_eq!(after.copies, before.copies + 1);
        assert_eq!(m.clock(), 1_000_000);
        if Tracer::enabled() {
            let v = m
                .tracer()
                .metrics()
                .get("machine-test", "span_seam")
                .unwrap()
                .vtime_ns;
            assert_eq!(v, 1_000_000);
        }
    }

    #[test]
    fn gather_charges_descriptors_not_copies() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let b = oskit_trace::boundary!("machine-test", "sg_seam");
        m.charge_gather_at(b, 1514, 2);
        let s = m.meter.snapshot();
        // The bytes moved, but nothing was copied by the CPU...
        assert_eq!(s.bytes_gathered, 1514);
        assert_eq!(s.gathers, 1);
        assert_eq!(s.bytes_copied, 0);
        // ...which only cost two descriptor writes of clock time, far
        // below the ~60 µs a 1514-byte copy would have charged.
        assert_eq!(m.clock(), 2 * m.costs.sg_frag_ns);
        assert!(m.clock() < m.costs.copy_ns(1514) / 10);
        if Tracer::enabled() {
            let bm = *m.tracer().metrics().get("machine-test", "sg_seam").unwrap();
            assert_eq!((bm.gathers, bm.bytes_gathered, bm.bytes_copied), (1, 1514, 0));
        }
    }

    #[test]
    fn meters_track_work() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.charge_copy(100);
        m.charge_copy(200);
        m.charge_checksum(50);
        m.charge_irq();
        let s = m.meter.snapshot();
        assert_eq!(s.bytes_copied, 300);
        assert_eq!(s.copies, 2);
        assert_eq!(s.bytes_checksummed, 50);
        assert_eq!(s.irqs, 1);
    }
}
