//! The simulated PC: RAM, interrupt controller, CPU clock and accounting.

use crate::costs::{CostModel, WorkMeter};
use crate::irq::IrqController;
use crate::phys::PhysMem;
use crate::sched::{EventId, Ns, Sim};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One simulated machine (one "PC" of the paper's two-machine testbed).
///
/// A machine owns its physical memory, interrupt controller, cost meters
/// and a **CPU clock**: virtual time consumed by code logically executing
/// on this machine.  The clock advances when components charge work
/// ([`Machine::charge_copy`] and friends) and is pulled forward to the
/// global event clock whenever an event (packet arrival, disk completion)
/// is delivered to the machine.
pub struct Machine {
    /// Machine name, for diagnostics ("sender", "receiver", ...).
    pub name: String,
    /// The simulation this machine belongs to.
    pub sim: Arc<Sim>,
    /// Simulated RAM.
    pub phys: PhysMem,
    /// The interrupt controller.
    pub irq: Arc<IrqController>,
    /// Rates converting mechanical work to virtual time.
    pub costs: CostModel,
    /// Counters of mechanical work performed.
    pub meter: WorkMeter,
    clock: AtomicU64,
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of RAM and default costs.
    pub fn new(sim: &Arc<Sim>, name: impl Into<String>, mem_size: usize) -> Arc<Machine> {
        Self::with_costs(sim, name, mem_size, CostModel::default())
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_costs(
        sim: &Arc<Sim>,
        name: impl Into<String>,
        mem_size: usize,
        costs: CostModel,
    ) -> Arc<Machine> {
        Arc::new(Machine {
            name: name.into(),
            sim: Arc::clone(sim),
            phys: PhysMem::new(mem_size),
            irq: Arc::new(IrqController::new()),
            costs,
            meter: WorkMeter::default(),
            clock: AtomicU64::new(0),
        })
    }

    /// This machine's CPU clock: the virtual time up to which its
    /// processor has been busy.
    pub fn clock(&self) -> Ns {
        self.clock.load(Ordering::Relaxed)
    }

    /// Pulls the CPU clock forward to at least `t` (an event was delivered
    /// at global time `t`; the CPU cannot have acted on it earlier).
    pub fn observe(&self, t: Ns) {
        self.clock.fetch_max(t, Ordering::Relaxed);
    }

    /// Advances the CPU clock by `ns` of processing.
    pub fn advance(&self, ns: Ns) {
        self.clock.fetch_add(ns, Ordering::Relaxed);
    }

    /// The time at which work started *now* would be scheduled: the later
    /// of this CPU's clock and the global event clock.
    pub fn cpu_now(&self) -> Ns {
        self.clock().max(self.sim.now())
    }

    /// Schedules `action` at `delay` ns after [`Machine::cpu_now`],
    /// observing the dispatch time on this machine's clock first.
    pub fn at_cpu(
        self: &Arc<Self>,
        delay: Ns,
        action: impl FnOnce(&Arc<Machine>) + Send + 'static,
    ) -> EventId {
        let when = self.cpu_now() + delay;
        let m = Arc::clone(self);
        self.sim.at_abs(when, move || {
            m.observe(m.sim.now());
            action(&m);
        })
    }

    /// Charges a memory copy of `bytes` bytes: advances the CPU clock and
    /// records the copy in the meter.
    ///
    /// Every `memcpy` performed by driver, glue, or protocol code calls
    /// this, so the copy counts behind Table 1's send/receive asymmetry
    /// are measured, not asserted.
    pub fn charge_copy(&self, bytes: usize) {
        self.meter.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
        self.meter.copies.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.copy_ns(bytes));
    }

    /// Charges a checksum pass over `bytes` bytes.
    pub fn charge_checksum(&self, bytes: usize) {
        self.meter
            .bytes_checksummed
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.advance(self.costs.checksum_ns(bytes));
    }

    /// Charges one component-boundary crossing (COM dispatch plus glue
    /// prologue/epilogue) — the per-call price of separability that
    /// dominates Table 2's latency overhead.
    pub fn charge_crossing(&self) {
        self.meter.crossings.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.crossing_ns);
    }

    /// Charges one layer of per-packet protocol processing.
    pub fn charge_layer(&self) {
        self.advance(self.costs.per_layer_ns);
    }

    /// Charges the fixed cost of taking a hardware interrupt.
    pub fn charge_irq(&self) {
        self.meter.irqs.fetch_add(1, Ordering::Relaxed);
        self.advance(self.costs.irq_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_charges() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.charge_copy(25_000); // 1 ms at 25 MB/s.
        assert_eq!(m.clock(), 1_000_000);
        m.charge_crossing();
        assert_eq!(m.clock(), 1_000_500);
    }

    #[test]
    fn observe_never_moves_clock_backwards() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.advance(500);
        m.observe(100);
        assert_eq!(m.clock(), 500);
        m.observe(900);
        assert_eq!(m.clock(), 900);
    }

    #[test]
    fn at_cpu_runs_after_charged_work() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.advance(10_000); // CPU is busy until t=10 µs.
        let m2 = Arc::clone(&m);
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let done = Arc::new(crate::sched::SleepRecord::new());
            let d2 = Arc::clone(&done);
            let s3 = Arc::clone(&s2);
            m2.at_cpu(5, move |m| {
                // The event fires at cpu_now() + 5, not sim.now() + 5.
                assert!(m.sim.now() >= 10_005);
                d2.signal(&s3);
            });
            done.wait(&s2);
        });
        sim.run();
    }

    #[test]
    fn meters_track_work() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        m.charge_copy(100);
        m.charge_copy(200);
        m.charge_checksum(50);
        m.charge_irq();
        let s = m.meter.snapshot();
        assert_eq!(s.bytes_copied, 300);
        assert_eq!(s.copies, 2);
        assert_eq!(s.bytes_checksummed, 50);
        assert_eq!(s.irqs, 1);
    }
}
