//! A 16550-style serial port.
//!
//! Carries the console and the GDB remote-debugging byte stream (paper
//! §3.5: "a serial-line stub for the GNU debugger ... communicates over a
//! serial line with GDB running on another machine").  The "other end" of
//! the line is the host test harness, which injects and drains bytes.

use crate::irq::lines;
use crate::machine::Machine;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

/// The serial port device.
pub struct Uart {
    machine: Weak<Machine>,
    irq_line: u8,
    tx: Mutex<Vec<u8>>,
    rx: Mutex<VecDeque<u8>>,
    echo_to_host: Mutex<bool>,
}

impl Uart {
    /// Attaches a UART on COM1 (IRQ 4).
    pub fn new(machine: &Arc<Machine>) -> Arc<Uart> {
        Arc::new(Uart {
            machine: Arc::downgrade(machine),
            irq_line: lines::COM1,
            tx: Mutex::new(Vec::new()),
            rx: Mutex::new(VecDeque::new()),
            echo_to_host: Mutex::new(false),
        })
    }

    /// The IRQ line this UART raises on received data.
    pub fn irq_line(&self) -> u8 {
        self.irq_line
    }

    /// Mirrors transmitted bytes to the host's stdout (useful when running
    /// the examples interactively).
    pub fn set_echo_to_host(&self, on: bool) {
        *self.echo_to_host.lock() = on;
    }

    // --- Guest side (the kernel's end of the port) ---

    /// Transmits one byte (guest → host).
    pub fn putc(&self, byte: u8) {
        self.tx.lock().push(byte);
        if *self.echo_to_host.lock() {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(&[byte]);
            let _ = std::io::stdout().flush();
        }
    }

    /// Transmits a buffer (guest → host).
    pub fn write(&self, bytes: &[u8]) {
        for &b in bytes {
            self.putc(b);
        }
    }

    /// Receives one byte if available (guest ← host).
    pub fn getc(&self) -> Option<u8> {
        self.rx.lock().pop_front()
    }

    /// Returns whether receive data is available.
    pub fn rx_ready(&self) -> bool {
        !self.rx.lock().is_empty()
    }

    // --- Host side (the test harness / remote GDB's end) ---

    /// Injects bytes as if received on the line, raising the UART IRQ.
    pub fn host_inject(&self, bytes: &[u8]) {
        self.rx.lock().extend(bytes.iter().copied());
        if let Some(m) = self.machine.upgrade() {
            m.irq.raise(self.irq_line);
        }
    }

    /// Drains everything the guest has transmitted so far.
    pub fn host_drain(&self) -> Vec<u8> {
        std::mem::take(&mut *self.tx.lock())
    }

    /// Peeks at the transmitted bytes without draining.
    pub fn host_peek(&self) -> Vec<u8> {
        self.tx.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Sim;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn guest_output_reaches_host() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let uart = Uart::new(&m);
        uart.write(b"Hello World\n");
        assert_eq!(uart.host_drain(), b"Hello World\n");
        assert!(uart.host_drain().is_empty());
    }

    #[test]
    fn host_inject_raises_irq_when_enabled() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let uart = Uart::new(&m);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        m.irq.install(uart.irq_line(), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        m.irq.enable();
        uart.host_inject(b"ab");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(uart.getc(), Some(b'a'));
        assert_eq!(uart.getc(), Some(b'b'));
        assert_eq!(uart.getc(), None);
    }

    #[test]
    fn rx_ready_tracks_queue() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let uart = Uart::new(&m);
        assert!(!uart.rx_ready());
        uart.host_inject(b"x");
        assert!(uart.rx_ready());
        uart.getc();
        assert!(!uart.rx_ready());
    }
}
