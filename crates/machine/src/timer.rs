//! The programmable interval timer (8253/8254-style).
//!
//! Provides the periodic tick the donor-OS components expect (BSD's 100 Hz
//! softclock, Linux jiffies) and the timer support the language runtimes
//! of §6 used for preemptive green-thread scheduling.

use crate::irq::lines;
use crate::machine::Machine;
use crate::sched::Ns;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// The interval timer device.
pub struct Timer {
    machine: Weak<Machine>,
    /// Current generation: bumped on every disarm/re-arm so stale tick
    /// events from an earlier arming cancel themselves.
    generation: AtomicU64,
    period: Mutex<Option<Ns>>,
    ticks: AtomicU64,
}

impl Timer {
    /// Attaches a timer on IRQ 0, initially disarmed.
    pub fn new(machine: &Arc<Machine>) -> Arc<Timer> {
        Arc::new(Timer {
            machine: Arc::downgrade(machine),
            generation: AtomicU64::new(0),
            period: Mutex::new(None),
            ticks: AtomicU64::new(0),
        })
    }

    /// The IRQ line the timer ticks on.
    pub fn irq_line(&self) -> u8 {
        lines::TIMER
    }

    /// Total ticks delivered since creation.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Arms the timer to raise IRQ 0 every `period` ns.
    ///
    /// Re-arming replaces the previous period.
    pub fn arm(self: &Arc<Self>, period: Ns) {
        assert!(period > 0, "timer period must be positive");
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *self.period.lock() = Some(period);
        self.schedule_tick(generation, period);
    }

    /// Disarms the timer; no further ticks fire.
    pub fn disarm(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        *self.period.lock() = None;
    }

    fn schedule_tick(self: &Arc<Self>, generation: u64, period: Ns) {
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        let timer = Arc::clone(self);
        machine.sim.at(period, move || {
            if timer.generation.load(Ordering::SeqCst) != generation {
                return; // Disarmed or re-armed since this tick was set.
            }
            timer.ticks.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = timer.machine.upgrade() {
                m.observe(m.sim.now());
                m.irq.raise(lines::TIMER);
            }
            timer.schedule_tick(generation, period);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{SleepRecord, Sim};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn periodic_ticks_fire_while_armed() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let timer = Timer::new(&m);
        let ticks = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&ticks);
        m.irq.install(timer.irq_line(), move |_| {
            t2.fetch_add(1, Ordering::SeqCst);
        });
        m.irq.enable();
        timer.arm(10_000_000); // 10 ms → 100 Hz.
        let s2 = Arc::clone(&sim);
        let timer2 = Arc::clone(&timer);
        sim.spawn("t", move || {
            let done = Arc::new(SleepRecord::new());
            let d2 = Arc::clone(&done);
            let s3 = Arc::clone(&s2);
            s2.at(105_000_000, move || d2.signal(&s3));
            done.wait(&s2);
            timer2.disarm();
        });
        sim.run();
        assert_eq!(ticks.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn disarm_stops_ticks() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let timer = Timer::new(&m);
        m.irq.enable();
        timer.arm(1_000);
        timer.disarm();
        let s2 = Arc::clone(&sim);
        sim.spawn("t", move || {
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 10_000);
        });
        sim.run();
        assert_eq!(timer.ticks(), 0);
    }

    #[test]
    fn rearm_changes_period() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let timer = Timer::new(&m);
        m.irq.enable();
        timer.arm(1_000_000);
        timer.arm(100_000); // Replaces: ten times faster.
        let s2 = Arc::clone(&sim);
        let timer2 = Arc::clone(&timer);
        sim.spawn("t", move || {
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 1_050_000);
            timer2.disarm();
        });
        sim.run();
        assert_eq!(timer.ticks(), 10);
    }
}
