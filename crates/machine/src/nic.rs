//! The Ethernet NIC model and the wire connecting two machines.
//!
//! Stands in for the paper's "two Pentium Pro 200MHz PCs connected by
//! 100Mbps Ethernet" (§5).  The NIC exposes what driver code actually
//! touches: a receive ring drained at interrupt level and a transmit
//! entry point that DMAs a contiguous frame onto the wire.  The wire
//! charges real Ethernet serialization time — preamble, frame, FCS and
//! inter-frame gap at the configured link rate — per direction.

use crate::machine::Machine;
use crate::sched::Ns;
use oskit_fault::NicTxFault;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Ethernet framing overhead on the wire: preamble+SFD (8) + FCS (4) +
/// inter-frame gap (12), in bytes.
pub const WIRE_OVERHEAD_BYTES: u64 = 24;

/// Minimum Ethernet frame (without FCS) — short frames are padded.
pub const MIN_FRAME: usize = 60;

/// Maximum Ethernet frame (without FCS): 1500 MTU + 14 header.
pub const MAX_FRAME: usize = 1514;

/// Link parameters.
#[derive(Clone, Copy, Debug)]
pub struct WireConfig {
    /// Link rate in bits per second (100 Mbps in the paper).
    pub bits_per_sec: u64,
    /// One-way propagation + PHY latency in ns.
    pub latency_ns: Ns,
    /// Deterministic fault injection: drop every Nth transmitted frame
    /// (None = lossless).  Real Ethernet loses frames to collisions and
    /// overruns; TCP must recover.
    pub drop_every: Option<u64>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            bits_per_sec: 100_000_000,
            latency_ns: 1_000,
            drop_every: None,
        }
    }
}

impl WireConfig {
    /// Time to serialize a frame of `len` payload bytes onto the wire.
    pub fn serialize_ns(&self, len: usize) -> Ns {
        let on_wire = (len.max(MIN_FRAME) as u64) + WIRE_OVERHEAD_BYTES;
        on_wire * 8 * 1_000_000_000 / self.bits_per_sec
    }
}

/// Hardware receive interrupt-mitigation parameters (what `ethtool -C
/// rx-frames/rx-usecs` programs on a real NIC).
///
/// With coalescing active the NIC holds back the receive interrupt until
/// either `frames` frames are pending on the ring or the link has been
/// quiet — no new frame — for `delay_ns` (a packet timer: each arrival
/// pushes the deadline out, like the e1000's RDTR register).  The delay
/// bound keeps a trickle of traffic from waiting forever; it is also
/// exactly the latency price table2's `--napi` ablation measures on a
/// lone packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RxCoalesce {
    /// Raise the interrupt once this many frames are pending.
    pub frames: usize,
    /// ... or once no new frame has arrived for this long.
    pub delay_ns: Ns,
}

impl Default for RxCoalesce {
    fn default() -> Self {
        // 8 frames or 150 µs of quiet: at full 100 Mbps burst
        // (1514-byte frames every ~123 µs) arrivals keep beating the
        // quiet window, so the frame bound wins and batches run 8 deep —
        // an 8x interrupt reduction; the moment the sender pauses (a
        // lone packet, slow start, the tail of a transfer) the packet
        // timer announces the partial batch within 150 µs, which is the
        // latency price table2's `--napi` row measures.
        RxCoalesce {
            frames: 8,
            delay_ns: 150_000,
        }
    }
}

/// One direction of the full-duplex link.
struct WireDir {
    /// The wire is occupied until this time.
    next_free: Mutex<Ns>,
}

/// The Ethernet NIC device.
pub struct Nic {
    machine: Weak<Machine>,
    mac: [u8; 6],
    irq_line: u8,
    config: WireConfig,
    peer: Mutex<Option<Weak<Nic>>>,
    tx_dir: WireDir,
    rx_ring: Mutex<VecDeque<Vec<u8>>>,
    rx_capacity: usize,
    rx_dropped: AtomicU64,
    tx_count: AtomicU64,
    wire_dropped: AtomicU64,
    /// Frames the driver offered for transmission (includes frames a
    /// wedged transmitter ate).
    tx_offered: AtomicU64,
    /// Frames the transmitter actually serialized onto the wire — the
    /// hardware counter a driver watchdog compares against `tx_offered`
    /// to detect a wedge.
    tx_wire: AtomicU64,
    /// Whether the receive interrupt is armed.  A NAPI-style driver
    /// disarms it on the first frame of a batch and re-arms it only when
    /// the ring runs dry; the classic driver never touches it.
    rx_irq_armed: AtomicBool,
    /// Interrupt-mitigation parameters (None = announce every frame,
    /// the 1997 default).
    rx_coalesce: Mutex<Option<RxCoalesce>>,
    /// Whether the coalesce packet timer is ticking.
    rx_timer_armed: AtomicBool,
    /// Absolute time the packet timer should fire; every accepted frame
    /// pushes it out by `delay_ns` (quiescence detection), so it only
    /// actually fires once the link pauses.
    rx_timer_deadline: AtomicU64,
    /// Frames accepted into the receive ring over the NIC's lifetime.
    rx_enqueued: AtomicU64,
    /// Frames the driver popped off the ring over the NIC's lifetime.
    /// `rx_enqueued`/`rx_popped` both standing still while the ring is
    /// non-empty is the driver watchdog's stalled-ring signal.
    rx_popped: AtomicU64,
}

impl Nic {
    /// Attaches a NIC with the given MAC on IRQ 10.
    pub fn new(machine: &Arc<Machine>, mac: [u8; 6]) -> Arc<Nic> {
        Self::with_config(machine, mac, WireConfig::default())
    }

    /// Attaches a NIC with explicit link parameters.
    pub fn with_config(machine: &Arc<Machine>, mac: [u8; 6], config: WireConfig) -> Arc<Nic> {
        Arc::new(Nic {
            machine: Arc::downgrade(machine),
            mac,
            irq_line: crate::irq::lines::ETHER,
            config,
            peer: Mutex::new(None),
            tx_dir: WireDir {
                next_free: Mutex::new(0),
            },
            rx_ring: Mutex::new(VecDeque::new()),
            rx_capacity: 64,
            rx_dropped: AtomicU64::new(0),
            tx_count: AtomicU64::new(0),
            wire_dropped: AtomicU64::new(0),
            tx_offered: AtomicU64::new(0),
            tx_wire: AtomicU64::new(0),
            rx_irq_armed: AtomicBool::new(true),
            rx_coalesce: Mutex::new(None),
            rx_timer_armed: AtomicBool::new(false),
            rx_timer_deadline: AtomicU64::new(0),
            rx_enqueued: AtomicU64::new(0),
            rx_popped: AtomicU64::new(0),
        })
    }

    /// The station MAC address.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    /// The IRQ line raised on packet reception.
    pub fn irq_line(&self) -> u8 {
        self.irq_line
    }

    /// Frames dropped because the receive ring was full.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped.load(Ordering::Relaxed)
    }

    /// Connects two NICs back to back (a crossover cable / dedicated
    /// switch port pair).
    pub fn connect(a: &Arc<Nic>, b: &Arc<Nic>) {
        *a.peer.lock() = Some(Arc::downgrade(b));
        *b.peer.lock() = Some(Arc::downgrade(a));
    }

    /// Transmits a contiguous frame (driver → wire).
    ///
    /// The frame leaves when the transmit direction is free; serialization
    /// and propagation delays are charged on the wire, not the CPU (the
    /// NIC DMAs autonomously).  Oversized frames panic — the driver must
    /// respect the MTU, as real hardware would reject them.
    pub fn transmit(&self, frame: &[u8]) {
        self.transmit_assembled(frame.to_vec());
    }

    /// Transmits a frame supplied as a fragment list (driver → wire,
    /// scatter-gather mode).
    ///
    /// The gathering DMA engine walks the descriptors and assembles the
    /// frame on its way onto the wire; like the contiguous [`Nic::transmit`]
    /// path, that movement is the NIC's work, not the CPU's, so no copy is
    /// charged.  Timing on the wire is identical to transmitting the
    /// flattened frame — serialization only sees bytes.
    pub fn transmit_sg(&self, frags: &[&[u8]]) {
        let total: usize = frags.iter().map(|f| f.len()).sum();
        let mut frame = Vec::with_capacity(total);
        for f in frags {
            frame.extend_from_slice(f);
        }
        self.transmit_assembled(frame);
    }

    /// The common tail of both transmit flavors: wire occupancy,
    /// fault injection, and delivery scheduling.
    fn transmit_assembled(&self, frame: Vec<u8>) {
        assert!(frame.len() <= MAX_FRAME, "frame exceeds MTU: {}", frame.len());
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        machine.meter.packets_sent.fetch_add(1, Ordering::Relaxed);
        self.tx_offered.fetch_add(1, Ordering::Relaxed);
        // Scripted faults: a wedged transmitter eats the frame before it
        // reaches the wire (tx_wire stalls — the watchdog's signal); a
        // scheduled drop behaves like the drop_every hook below.
        let injected = match machine.faults().nic_tx_fault(machine.cpu_now()) {
            NicTxFault::Wedged => return,
            NicTxFault::Dropped => true,
            NicTxFault::None => false,
        };
        // Fault injection: the frame occupies the wire but never arrives.
        let n = self.tx_count.fetch_add(1, Ordering::Relaxed) + 1;
        let dropped = injected
            || self
                .config
                .drop_every
                .is_some_and(|every| n.is_multiple_of(every));
        if dropped {
            self.wire_dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.tx_wire.fetch_add(1, Ordering::Relaxed);
        let peer = self.peer.lock().clone();
        let Some(peer) = peer.and_then(|w| w.upgrade()) else {
            return; // Unconnected: frames vanish, like an unplugged cable.
        };
        let start = {
            let mut free = self.tx_dir.next_free.lock();
            let start = (*free).max(machine.cpu_now());
            *free = start + self.config.serialize_ns(frame.len());
            *free
        };
        if dropped {
            return;
        }
        let arrival = start + self.config.latency_ns;
        let sim = Arc::clone(&machine.sim);
        sim.at_abs(arrival, move || peer.wire_deliver(frame));
    }

    /// Frames destroyed by injected wire faults.
    pub fn wire_dropped(&self) -> u64 {
        self.wire_dropped.load(Ordering::Relaxed)
    }

    /// Frames the driver has offered for transmission, including frames a
    /// wedged transmitter ate.
    pub fn tx_offered(&self) -> u64 {
        self.tx_offered.load(Ordering::Relaxed)
    }

    /// Frames the transmitter actually serialized onto the wire — the
    /// hardware transmit counter.  A driver watchdog that sees
    /// `tx_offered` advance while `tx_wire` stalls has found a wedged
    /// transmitter.
    pub fn tx_wire(&self) -> u64 {
        self.tx_wire.load(Ordering::Relaxed)
    }

    /// Re-initializes the transmitter (the watchdog's recovery action):
    /// clears a wedge in progress so subsequent transmits reach the wire
    /// again.  Frames already eaten stay lost — the protocol retransmits.
    pub fn reset(&self) {
        if let Some(machine) = self.machine.upgrade() {
            machine.faults().nic_reset(machine.cpu_now());
        }
    }

    /// Called by the wire when a frame arrives: queues it on the receive
    /// ring and announces it — immediately, coalesced, or not at all
    /// (interrupt disarmed: the driver is already polling).
    fn wire_deliver(self: &Arc<Self>, frame: Vec<u8>) {
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        machine.observe(machine.sim.now());
        let pending = {
            let mut ring = self.rx_ring.lock();
            if ring.len() >= self.rx_capacity {
                self.rx_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ring.push_back(frame);
            ring.len()
        };
        self.rx_enqueued.fetch_add(1, Ordering::Relaxed);
        machine
            .meter
            .packets_received
            .fetch_add(1, Ordering::Relaxed);
        if !self.rx_irq_armed.load(Ordering::Relaxed) {
            // The driver disarmed the interrupt and is draining the ring
            // by polling; it will find this frame without being told.
            return;
        }
        let coalesce = *self.rx_coalesce.lock();
        match coalesce {
            // No mitigation: announce every frame, as in 1997.  A lost
            // interrupt leaves the frame on the ring; the handler drains
            // the whole ring on the next delivered edge.
            None => self.raise_rx_irq(&machine),
            Some(c) => {
                // Every arrival pushes the quiescence deadline out.
                self.rx_timer_deadline
                    .store(machine.sim.now() + c.delay_ns, Ordering::Relaxed);
                if pending >= c.frames {
                    // Batch full: announce now.  If this edge is lost,
                    // the next arrival re-raises (pending stays over the
                    // bound), the packet timer announces a paused link,
                    // and the driver's rx watchdog backstops both.
                    self.raise_rx_irq(&machine);
                } else if !self.rx_timer_armed.swap(true, Ordering::Relaxed) {
                    // First frame of a batch: start the packet timer.
                    let weak = Arc::downgrade(self);
                    machine.sim.at(c.delay_ns, move || {
                        if let Some(nic) = weak.upgrade() {
                            nic.rx_coalesce_fire();
                        }
                    });
                }
            }
        }
    }

    /// The coalesce packet timer: if frames kept arriving the deadline
    /// has moved — chase it; once the link has actually been quiet for
    /// the programmed delay, announce whatever has accumulated, unless
    /// the driver got there first.
    fn rx_coalesce_fire(self: &Arc<Self>) {
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        let now = machine.sim.now();
        let deadline = self.rx_timer_deadline.load(Ordering::Relaxed);
        if now < deadline {
            let weak = Arc::downgrade(self);
            machine.sim.at(deadline - now, move || {
                if let Some(nic) = weak.upgrade() {
                    nic.rx_coalesce_fire();
                }
            });
            return;
        }
        self.rx_timer_armed.store(false, Ordering::Relaxed);
        machine.observe(now);
        if self.rx_irq_armed.load(Ordering::Relaxed) && !self.rx_ring.lock().is_empty() {
            self.raise_rx_irq(&machine);
        }
    }

    /// Raises the receive interrupt, subject to injected interrupt loss.
    fn raise_rx_irq(&self, machine: &Arc<Machine>) {
        if machine.faults().irq_lost(self.irq_line) {
            return;
        }
        machine.irq.raise(self.irq_line);
    }

    /// Programs the receive interrupt-mitigation registers (None turns
    /// mitigation off).  Called by the driver at open time.
    pub fn set_rx_coalesce(&self, c: Option<RxCoalesce>) {
        *self.rx_coalesce.lock() = c;
    }

    /// Disarms the receive interrupt (NAPI driver entering poll mode).
    /// Frames continue to accumulate on the ring silently.
    pub fn rx_irq_disable(&self) {
        self.rx_irq_armed.store(false, Ordering::Relaxed);
    }

    /// Re-arms the receive interrupt (NAPI driver leaving poll mode).
    ///
    /// If frames raced onto the ring while the interrupt was disarmed,
    /// the NIC announces them immediately — this closes the classic
    /// re-arm race where a frame lands between the driver's last
    /// `rx_pop` and the write that re-enables the interrupt.
    pub fn rx_irq_enable(self: &Arc<Self>) {
        self.rx_irq_armed.store(true, Ordering::Relaxed);
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        if !self.rx_ring.lock().is_empty() {
            self.raise_rx_irq(&machine);
        }
    }

    /// Whether the receive interrupt is armed.
    pub fn rx_irq_armed(&self) -> bool {
        self.rx_irq_armed.load(Ordering::Relaxed)
    }

    /// Frames currently pending on the receive ring.
    pub fn rx_pending(&self) -> usize {
        self.rx_ring.lock().len()
    }

    /// Lifetime count of frames accepted into the receive ring.
    pub fn rx_enqueued(&self) -> u64 {
        self.rx_enqueued.load(Ordering::Relaxed)
    }

    /// Lifetime count of frames the driver popped off the ring.
    pub fn rx_popped(&self) -> u64 {
        self.rx_popped.load(Ordering::Relaxed)
    }

    /// Pops the next received frame from the ring (driver, at interrupt
    /// level).
    pub fn rx_pop(&self) -> Option<Vec<u8>> {
        let f = self.rx_ring.lock().pop_front();
        if f.is_some() {
            self.rx_popped.fetch_add(1, Ordering::Relaxed);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{SleepRecord, Sim};

    fn pair(sim: &Arc<Sim>) -> (Arc<Machine>, Arc<Nic>, Arc<Machine>, Arc<Nic>) {
        let ma = Machine::new(sim, "a", 4096);
        let mb = Machine::new(sim, "b", 4096);
        let na = Nic::new(&ma, [2, 0, 0, 0, 0, 1]);
        let nb = Nic::new(&mb, [2, 0, 0, 0, 0, 2]);
        Nic::connect(&na, &nb);
        (ma, na, mb, nb)
    }

    #[test]
    fn frame_crosses_the_wire_and_raises_irq() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        let nb2 = Arc::clone(&nb);
        mb.irq.install(nb.irq_line(), move |_| {
            while let Some(f) = nb2.rx_pop() {
                g2.lock().push(f);
            }
        });
        mb.irq.enable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            na2.transmit(&[0xAA; 100]);
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 1_000_000);
        });
        sim.run();
        let got = got.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], vec![0xAA; 100]);
    }

    #[test]
    fn serialization_time_matches_100mbps() {
        let cfg = WireConfig::default();
        // A 1514-byte frame: (1514+24)*8 bits at 100 Mbps = 123.04 µs.
        assert_eq!(cfg.serialize_ns(1514), 123_040);
        // Short frames are padded to the 60-byte minimum.
        assert_eq!(cfg.serialize_ns(1), cfg.serialize_ns(60));
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&times);
        let nb2 = Arc::clone(&nb);
        let mb2 = Arc::clone(&mb);
        mb.irq.install(nb.irq_line(), move |_| {
            while nb2.rx_pop().is_some() {
                t2.lock().push(mb2.sim.now());
            }
        });
        mb.irq.enable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            na2.transmit(&[0; 1514]);
            na2.transmit(&[0; 1514]);
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        let times = times.lock();
        assert_eq!(times.len(), 2);
        // Second frame arrives one serialization time after the first.
        assert_eq!(times[1] - times[0], WireConfig::default().serialize_ns(1514));
    }

    #[test]
    fn sg_transmit_gathers_fragments_onto_the_wire() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        let nb2 = Arc::clone(&nb);
        mb.irq.install(nb.irq_line(), move |_| {
            while let Some(f) = nb2.rx_pop() {
                g2.lock().push(f);
            }
        });
        mb.irq.enable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            na2.transmit_sg(&[&[0x11; 14], &[0x22; 100], &[0x33; 6]]);
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 1_000_000);
        });
        sim.run();
        let got = got.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].len(), 120);
        assert_eq!(&got[0][..14], &[0x11; 14]);
        assert_eq!(&got[0][14..114], &[0x22; 100]);
        assert_eq!(&got[0][114..], &[0x33; 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_sg_frame_is_rejected() {
        let sim = Sim::new();
        let (_ma, na, _mb, _nb) = pair(&sim);
        na.transmit_sg(&[&[0; 1000], &[0; 1000]]);
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        // No handler installed and interrupts disabled on b: ring fills.
        let _ = mb;
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            for _ in 0..100 {
                na2.transmit(&[0; 64]);
            }
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 100_000_000);
        });
        sim.run();
        assert_eq!(nb.rx_dropped(), 36); // 100 - 64 ring slots.
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_frame_is_rejected() {
        let sim = Sim::new();
        let (_ma, na, _mb, _nb) = pair(&sim);
        na.transmit(&[0; 2000]);
    }

    #[test]
    fn coalescing_batches_interrupts_at_the_frame_bound() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        nb.set_rx_coalesce(Some(RxCoalesce {
            frames: 4,
            delay_ns: 1_000_000_000, // Effectively never: frame bound wins.
        }));
        let irqs = Arc::new(AtomicU64::new(0));
        let i2 = Arc::clone(&irqs);
        let nb2 = Arc::clone(&nb);
        mb.irq.install(nb.irq_line(), move |_| {
            i2.fetch_add(1, Ordering::Relaxed);
            while nb2.rx_pop().is_some() {}
        });
        mb.irq.enable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            for _ in 0..8 {
                na2.transmit(&[0; 200]);
            }
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        // 8 back-to-back frames, announced every 4th: two interrupts.
        assert_eq!(irqs.load(Ordering::Relaxed), 2);
        assert_eq!(nb.rx_popped(), 8);
    }

    #[test]
    fn coalescing_delay_bound_announces_a_lone_frame() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        nb.set_rx_coalesce(Some(RxCoalesce {
            frames: 64,
            delay_ns: 300_000,
        }));
        let seen_at = Arc::new(Mutex::new(Vec::new()));
        let t2 = Arc::clone(&seen_at);
        let nb2 = Arc::clone(&nb);
        let mb2 = Arc::clone(&mb);
        mb.irq.install(nb.irq_line(), move |_| {
            while nb2.rx_pop().is_some() {
                t2.lock().push(mb2.sim.now());
            }
        });
        mb.irq.enable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            na2.transmit(&[0; 100]);
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        let seen_at = seen_at.lock();
        assert_eq!(seen_at.len(), 1);
        // The frame waited the full delay bound (arrival + 300 µs).
        let arrival = WireConfig::default().serialize_ns(100) + WireConfig::default().latency_ns;
        assert_eq!(seen_at[0], arrival + 300_000);
    }

    #[test]
    fn disarmed_rx_irq_stays_silent_and_rearm_announces_backlog() {
        let sim = Sim::new();
        let (_ma, na, mb, nb) = pair(&sim);
        let irqs = Arc::new(AtomicU64::new(0));
        let i2 = Arc::clone(&irqs);
        mb.irq.install(nb.irq_line(), move |_| {
            i2.fetch_add(1, Ordering::Relaxed);
        });
        mb.irq.enable();
        nb.rx_irq_disable();
        let s2 = Arc::clone(&sim);
        let na2 = Arc::clone(&na);
        sim.spawn("tx", move || {
            na2.transmit(&[0; 100]);
            let done = Arc::new(SleepRecord::new());
            let _ = done.wait_timeout(&s2, 10_000_000);
        });
        sim.run();
        // Frame arrived silently...
        assert_eq!(irqs.load(Ordering::Relaxed), 0);
        assert_eq!(nb.rx_pending(), 1);
        // ...and re-arming announces the backlog immediately.
        nb.rx_irq_enable();
        assert_eq!(irqs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unconnected_nic_drops_silently() {
        let sim = Sim::new();
        let m = Machine::new(&sim, "solo", 4096);
        let n = Nic::new(&m, [2, 0, 0, 0, 0, 9]);
        n.transmit(&[1, 2, 3, 4]); // Must not panic.
    }
}
