//! `oskit-machine` — the simulated PC substrate.
//!
//! The paper's experiments run on real Pentium Pro PCs; this crate is the
//! documented substitution (see `DESIGN.md` §2): a discrete-event machine
//! model exposing exactly the contracts OSKit components program against —
//! physical memory with its layout quirks, an 8259-style interrupt
//! controller, trap frames, and register-level device models (UART, PIT
//! timer, Ethernet NIC on a rate-limited wire, IDE-style disk) — plus the
//! virtual-time scheduler that enforces the kit's process/interrupt
//! execution model and the cost accounting behind Tables 1 and 2.

pub mod costs;
pub mod disk;
pub mod irq;
pub mod machine;
pub mod nic;
pub mod phys;
pub mod sched;
pub mod timer;
pub mod trap;
pub mod uart;

pub use costs::{CostModel, WorkMeter, WorkSnapshot};
pub use disk::{Completion, Disk, DiskConfig, SECTOR_SIZE};
pub use irq::{IrqController, IrqGuard, NUM_IRQS};
pub use machine::{BoundarySpan, Machine};
pub use oskit_fault::{
    AllocFaults, DiskFault, DiskFaults, FaultInjector, FaultPlan, FaultSnapshot, IrqFaults,
    NicFaults, NicTxFault,
};
pub use oskit_trace::{boundary, BoundaryId, BoundaryMetrics, EventKind, TraceReport, Tracer};
pub use nic::{Nic, RxCoalesce, WireConfig, MAX_FRAME, MIN_FRAME};
pub use phys::{PhysAddr, PhysMem, DMA_LIMIT, LOWER_MEM_END, UPPER_MEM_START};
pub use sched::{EventId, Ns, Sim, SleepRecord, Tid, WakeReason};
pub use timer::Timer;
pub use trap::{TrapDisposition, TrapFrame};
pub use uart::Uart;
