//! The virtual-time cost model behind Tables 1 and 2.
//!
//! Nothing here is charged per *configuration*: the Linux, FreeBSD and
//! OSKit kernels of the paper's §5 experiments differ only in which code
//! runs, and therefore in which copies, protocol work and glue crossings
//! are actually performed.  Components report those mechanical facts
//! ("I copied N bytes", "I crossed a component boundary") and this model
//! converts them to virtual nanoseconds at 1997-era rates, so the *shape*
//! of the results — who wins and by what factor — is emergent.

use std::sync::atomic::{AtomicU64, Ordering};

/// Rates used to convert mechanical work into virtual time.
///
/// Defaults approximate the paper's testbed: Pentium Pro 200 MHz PCs on
/// 100 Mbps Ethernet.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Memory-copy bandwidth in bytes/second.  Calibrated so the paper's
    /// testbed behavior reproduces: packet-sized cache-cold copies on a
    /// Pentium Pro-class memory system (~25 MB/s effective).
    pub copy_bytes_per_sec: u64,
    /// Checksum bandwidth in bytes/second (single-pass load+add, roughly
    /// twice the copy rate).
    pub checksum_bytes_per_sec: u64,
    /// Fixed cost of one component-boundary crossing (COM dispatch plus
    /// glue prologue/epilogue), in nanoseconds (~100 cycles at 200 MHz).
    pub crossing_ns: u64,
    /// Fixed per-packet protocol processing cost per layer, in nanoseconds.
    pub per_layer_ns: u64,
    /// Fixed cost of taking one hardware interrupt, in nanoseconds.
    pub irq_ns: u64,
    /// Fixed cost of one softirq-style poll dispatch (scheduling and
    /// entering a NAPI `poll` callback), in nanoseconds.  Much cheaper
    /// than `irq_ns`: no context save/restore, no controller EOI — the
    /// whole economics of interrupt mitigation is paying this per
    /// *batch* instead of `irq_ns` per *frame*.
    pub poll_ns: u64,
    /// Cost of programming one scatter-gather descriptor (one fragment
    /// handed to gathering DMA hardware), in nanoseconds.  The CPU writes
    /// a (address, length) pair instead of copying the fragment — this is
    /// the whole economics of an SG-capable driver.
    pub sg_frag_ns: u64,
    /// Fixed syscall/entry cost, in nanoseconds (used by the in-kernel
    /// baselines of §5 which factored syscall overhead *out*; kept at zero
    /// by default for parity with the paper's methodology).
    pub syscall_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            copy_bytes_per_sec: 25_000_000,
            checksum_bytes_per_sec: 50_000_000,
            crossing_ns: 500,
            per_layer_ns: 2_000,
            irq_ns: 5_000,
            poll_ns: 1_500,
            sg_frag_ns: 300,
            syscall_ns: 0,
        }
    }
}

impl CostModel {
    /// Nanoseconds to copy `bytes` bytes.
    pub fn copy_ns(&self, bytes: usize) -> u64 {
        mul_div(bytes as u64, 1_000_000_000, self.copy_bytes_per_sec)
    }

    /// Nanoseconds to checksum `bytes` bytes.
    pub fn checksum_ns(&self, bytes: usize) -> u64 {
        mul_div(bytes as u64, 1_000_000_000, self.checksum_bytes_per_sec)
    }
}

fn mul_div(a: u64, b: u64, c: u64) -> u64 {
    ((a as u128 * b as u128) / c.max(1) as u128) as u64
}

/// Counters of the mechanical work a machine performed.
///
/// These are the quantities the paper's analysis talks about ("an
/// additional copy is necessary", "the overhead is largely attributable to
/// the additional glue code"); the experiment harnesses print them next to
/// the timing results.
#[derive(Debug, Default)]
pub struct WorkMeter {
    /// Total bytes passed through `memcpy`-style copies.
    pub bytes_copied: AtomicU64,
    /// Number of discrete copy operations.
    pub copies: AtomicU64,
    /// Total bytes handed to scatter-gather DMA as fragment lists
    /// (descriptors programmed, nothing copied by the CPU).
    pub bytes_gathered: AtomicU64,
    /// Number of scatter-gather hand-offs.
    pub gathers: AtomicU64,
    /// Component-boundary (COM/glue) crossings.
    pub crossings: AtomicU64,
    /// Bytes checksummed.
    pub bytes_checksummed: AtomicU64,
    /// Hardware interrupts taken.
    pub irqs: AtomicU64,
    /// Receive interrupts taken (the subset of `irqs` raised by the NIC
    /// rx path — the quantity interrupt mitigation exists to shrink).
    pub rx_irqs: AtomicU64,
    /// NAPI-style poll invocations (budgeted rx batch drains).
    pub rx_polls: AtomicU64,
    /// Frames delivered by those polls; `rx_batch_frames / rx_polls` is
    /// the achieved batch size.
    pub rx_batch_frames: AtomicU64,
    /// Packets handed to the NIC.
    pub packets_sent: AtomicU64,
    /// Packets received from the NIC.
    pub packets_received: AtomicU64,
    /// Buffer-cache lookups satisfied from memory (no device I/O).
    pub cache_hits: AtomicU64,
    /// Buffer-cache lookups that filled from the backing device.
    pub cache_misses: AtomicU64,
    /// Cached blocks evicted to make room (written back first if dirty).
    pub cache_evictions: AtomicU64,
}

impl WorkMeter {
    /// Snapshots all counters.
    pub fn snapshot(&self) -> WorkSnapshot {
        WorkSnapshot {
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            copies: self.copies.load(Ordering::Relaxed),
            bytes_gathered: self.bytes_gathered.load(Ordering::Relaxed),
            gathers: self.gathers.load(Ordering::Relaxed),
            crossings: self.crossings.load(Ordering::Relaxed),
            bytes_checksummed: self.bytes_checksummed.load(Ordering::Relaxed),
            irqs: self.irqs.load(Ordering::Relaxed),
            rx_irqs: self.rx_irqs.load(Ordering::Relaxed),
            rx_polls: self.rx_polls.load(Ordering::Relaxed),
            rx_batch_frames: self.rx_batch_frames.load(Ordering::Relaxed),
            packets_sent: self.packets_sent.load(Ordering::Relaxed),
            packets_received: self.packets_received.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.copies.store(0, Ordering::Relaxed);
        self.bytes_gathered.store(0, Ordering::Relaxed);
        self.gathers.store(0, Ordering::Relaxed);
        self.crossings.store(0, Ordering::Relaxed);
        self.bytes_checksummed.store(0, Ordering::Relaxed);
        self.irqs.store(0, Ordering::Relaxed);
        self.rx_irqs.store(0, Ordering::Relaxed);
        self.rx_polls.store(0, Ordering::Relaxed);
        self.rx_batch_frames.store(0, Ordering::Relaxed);
        self.packets_sent.store(0, Ordering::Relaxed);
        self.packets_received.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`WorkMeter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkSnapshot {
    /// See [`WorkMeter::bytes_copied`].
    pub bytes_copied: u64,
    /// See [`WorkMeter::copies`].
    pub copies: u64,
    /// See [`WorkMeter::bytes_gathered`].
    pub bytes_gathered: u64,
    /// See [`WorkMeter::gathers`].
    pub gathers: u64,
    /// See [`WorkMeter::crossings`].
    pub crossings: u64,
    /// See [`WorkMeter::bytes_checksummed`].
    pub bytes_checksummed: u64,
    /// See [`WorkMeter::irqs`].
    pub irqs: u64,
    /// See [`WorkMeter::rx_irqs`].
    pub rx_irqs: u64,
    /// See [`WorkMeter::rx_polls`].
    pub rx_polls: u64,
    /// See [`WorkMeter::rx_batch_frames`].
    pub rx_batch_frames: u64,
    /// See [`WorkMeter::packets_sent`].
    pub packets_sent: u64,
    /// See [`WorkMeter::packets_received`].
    pub packets_received: u64,
    /// See [`WorkMeter::cache_hits`].
    pub cache_hits: u64,
    /// See [`WorkMeter::cache_misses`].
    pub cache_misses: u64,
    /// See [`WorkMeter::cache_evictions`].
    pub cache_evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::default();
        assert_eq!(m.copy_ns(0), 0);
        assert_eq!(m.copy_ns(25_000_000), 1_000_000_000);
        assert_eq!(m.copy_ns(25_000), 1_000_000);
    }

    #[test]
    fn checksum_is_faster_than_copy() {
        let m = CostModel::default();
        assert!(m.checksum_ns(1500) < m.copy_ns(1500));
    }

    #[test]
    fn meter_snapshot_and_reset() {
        let w = WorkMeter::default();
        w.bytes_copied.fetch_add(100, Ordering::Relaxed);
        w.copies.fetch_add(1, Ordering::Relaxed);
        let s = w.snapshot();
        assert_eq!(s.bytes_copied, 100);
        assert_eq!(s.copies, 1);
        w.reset();
        assert_eq!(w.snapshot(), WorkSnapshot::default());
    }

    #[test]
    fn mul_div_does_not_overflow() {
        // 4 GB at 1 byte/sec must not overflow u64 math internally.
        let m = CostModel {
            copy_bytes_per_sec: 1,
            ..CostModel::default()
        };
        assert_eq!(m.copy_ns(4), 4_000_000_000);
    }
}
