//! The interrupt controller: a simulated 8259A PIC pair.
//!
//! Sixteen IRQ lines with per-line masking and a global interrupt-enable
//! flag (the x86 `IF` bit, controlled with `cli`/`sti`).  Interrupts raised
//! while disabled or masked stay pending and dispatch when re-enabled —
//! which is exactly the mechanism OSKit components rely on for their
//! "interrupt level" critical sections (paper §4.7.4).

use parking_lot::Mutex;
use std::sync::Arc;

/// Number of IRQ lines (two cascaded 8259As).
pub const NUM_IRQS: usize = 16;

/// Standard PC line assignments used by the simulated devices.
pub mod lines {
    /// Programmable interval timer.
    pub const TIMER: u8 = 0;
    /// Keyboard (unused by the kit but reserved, as on a PC).
    pub const KEYBOARD: u8 = 1;
    /// First serial port.
    pub const COM1: u8 = 4;
    /// Ethernet NIC (a typical ISA/PCI assignment).
    pub const ETHER: u8 = 10;
    /// IDE disk controller.
    pub const IDE: u8 = 14;
}

type Handler = Box<dyn FnMut(u8) + Send>;

struct State {
    /// Interrupt-enable depth (the `IF` flag with nesting): interrupts are
    /// deliverable when positive.  Starts at 0 (disabled), as on a real
    /// CPU out of reset; may go negative under nested `cli`.
    enable_depth: i64,
    /// Per-line mask bits (1 = masked).
    mask: u16,
    /// Pending lines awaiting dispatch.
    pending: u16,
    /// True while a handler is running (no nesting, like a PC with a
    /// single priority level).
    in_service: bool,
    handlers: Vec<Option<Handler>>,
    /// Count of interrupts delivered, per line.
    delivered: [u64; NUM_IRQS],
}

/// The interrupt controller.
pub struct IrqController {
    state: Mutex<State>,
}

impl Default for IrqController {
    fn default() -> Self {
        Self::new()
    }
}

impl IrqController {
    /// Creates a controller with interrupts disabled and all lines masked.
    pub fn new() -> IrqController {
        IrqController {
            state: Mutex::new(State {
                enable_depth: 0,
                mask: 0xffff,
                pending: 0,
                in_service: false,
                handlers: (0..NUM_IRQS).map(|_| None).collect(),
                delivered: [0; NUM_IRQS],
            }),
        }
    }

    /// Installs `handler` on `line` and unmasks the line, dispatching any
    /// interrupt already pending there.
    ///
    /// # Panics
    ///
    /// Panics if the line is out of range or already claimed — sharing a
    /// line requires the owner to demultiplex, as in the donor kernels.
    pub fn install(&self, line: u8, handler: impl FnMut(u8) + Send + 'static) {
        let mut st = self.state.lock();
        let l = line as usize;
        assert!(l < NUM_IRQS, "bad irq line {line}");
        assert!(st.handlers[l].is_none(), "irq line {line} already claimed");
        st.handlers[l] = Some(Box::new(handler));
        st.mask &= !(1 << l);
        drop(st);
        self.dispatch_pending();
    }

    /// Removes the handler from `line` and masks it.
    pub fn uninstall(&self, line: u8) {
        let mut st = self.state.lock();
        let l = line as usize;
        st.handlers[l] = None;
        st.mask |= 1 << l;
    }

    /// Masks `line` without removing its handler.
    pub fn mask_line(&self, line: u8) {
        self.state.lock().mask |= 1 << (line as usize);
    }

    /// Unmasks `line`, dispatching any pending interrupt.
    pub fn unmask_line(&self, line: u8) {
        self.state.lock().mask &= !(1 << (line as usize));
        self.dispatch_pending();
    }

    /// Disables interrupt delivery (`cli`).  Nests: each `disable` must be
    /// balanced by an [`IrqController::enable`].
    pub fn disable(&self) {
        self.state.lock().enable_depth -= 1;
    }

    /// Enables interrupt delivery (`sti`), dispatching pending interrupts
    /// once the outermost enable is reached.
    pub fn enable(&self) {
        self.state.lock().enable_depth += 1;
        self.dispatch_pending();
    }

    /// Returns whether interrupts are currently deliverable.
    pub fn enabled(&self) -> bool {
        self.state.lock().enable_depth > 0
    }

    /// Raises `line`.  If deliverable, the handler runs immediately on the
    /// caller's stack (interrupt level); otherwise the line goes pending.
    pub fn raise(&self, line: u8) {
        {
            let mut st = self.state.lock();
            st.pending |= 1 << (line as usize);
        }
        self.dispatch_pending();
    }

    /// Returns how many interrupts have been delivered on `line`.
    pub fn delivered(&self, line: u8) -> u64 {
        self.state.lock().delivered[line as usize]
    }

    /// Delivers pending, unmasked interrupts while enabled.
    fn dispatch_pending(&self) {
        loop {
            let (line, mut handler) = {
                let mut st = self.state.lock();
                if st.enable_depth <= 0 || st.in_service {
                    return;
                }
                let deliverable = st.pending & !st.mask;
                if deliverable == 0 {
                    return;
                }
                let line = deliverable.trailing_zeros() as usize;
                st.pending &= !(1 << line);
                // Take the handler out so it can run without the lock; a
                // handler may itself raise or mask lines.
                match st.handlers[line].take() {
                    Some(h) => {
                        st.in_service = true;
                        st.delivered[line] += 1;
                        (line, h)
                    }
                    None => continue, // Spurious: unmasked line with no handler.
                }
            };
            handler(line as u8);
            let mut st = self.state.lock();
            st.in_service = false;
            if st.handlers[line].is_none() {
                st.handlers[line] = Some(handler);
            }
        }
    }
}

/// RAII interrupt-disable guard: the osenv `intr_disable`/`intr_enable`
/// pattern with automatic restore.
pub struct IrqGuard {
    ctl: Arc<IrqController>,
}

impl IrqGuard {
    /// Disables interrupts until the guard drops.
    pub fn new(ctl: &Arc<IrqController>) -> IrqGuard {
        ctl.disable();
        IrqGuard {
            ctl: Arc::clone(ctl),
        }
    }
}

impl Drop for IrqGuard {
    fn drop(&mut self) {
        self.ctl.enable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting(ctl: &Arc<IrqController>, line: u8) -> Arc<AtomicUsize> {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        ctl.install(line, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        hits
    }

    #[test]
    fn raise_while_disabled_goes_pending() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 3);
        ctl.raise(3);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        ctl.enable();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn raise_while_enabled_dispatches_inline() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 5);
        ctl.enable();
        ctl.raise(5);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(ctl.delivered(5), 1);
    }

    #[test]
    fn masked_line_defers_until_unmask() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 7);
        ctl.enable();
        ctl.mask_line(7);
        ctl.raise(7);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        ctl.unmask_line(7);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pending_coalesces_multiple_raises() {
        // Like a real edge-triggered PIC: N raises while disabled deliver
        // one interrupt.
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 2);
        ctl.raise(2);
        ctl.raise(2);
        ctl.raise(2);
        ctl.enable();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_disable_requires_balanced_enable() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 1);
        ctl.enable(); // depth 1: enabled
        ctl.disable(); // depth 0
        ctl.raise(1);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        ctl.enable(); // depth 1 again
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn guard_restores_on_drop() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 4);
        ctl.enable();
        {
            let _g = IrqGuard::new(&ctl);
            ctl.raise(4);
            assert_eq!(hits.load(Ordering::SeqCst), 0);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_raising_own_line_does_not_recurse() {
        let ctl = Arc::new(IrqController::new());
        let depth = Arc::new(AtomicUsize::new(0));
        let max_depth = Arc::new(AtomicUsize::new(0));
        let (d, m) = (Arc::clone(&depth), Arc::clone(&max_depth));
        let ctl2 = Arc::new(IrqController::new());
        // Install on ctl; the handler raises its own line once.
        let raised = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&raised);
        let ctl_weak = Arc::downgrade(&ctl);
        ctl.install(6, move |_| {
            let cur = d.fetch_add(1, Ordering::SeqCst) + 1;
            m.fetch_max(cur, Ordering::SeqCst);
            if r2.fetch_add(1, Ordering::SeqCst) == 0 {
                if let Some(c) = ctl_weak.upgrade() {
                    c.raise(6); // Must be deferred, not nested.
                }
            }
            d.fetch_sub(1, Ordering::SeqCst);
        });
        drop(ctl2);
        ctl.enable();
        ctl.raise(6);
        assert_eq!(raised.load(Ordering::SeqCst), 2);
        assert_eq!(max_depth.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_install_panics() {
        let ctl = Arc::new(IrqController::new());
        ctl.install(9, |_| {});
        ctl.install(9, |_| {});
    }

    #[test]
    fn uninstall_masks_and_frees_line() {
        let ctl = Arc::new(IrqController::new());
        let hits = counting(&ctl, 11);
        ctl.enable();
        ctl.uninstall(11);
        ctl.raise(11);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        // Line can be claimed again.
        ctl.install(11, |_| {});
    }
}
