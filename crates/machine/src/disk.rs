//! The IDE-style disk model.
//!
//! What the driver sees: submit a sector request, get a completion
//! interrupt later, drain completions at interrupt level.  Timing models a
//! mid-90s drive: fixed per-request overhead (command + average
//! positioning) plus media transfer at a configurable rate, with requests
//! completing strictly in submission order (no tagged queueing).

use crate::irq::lines;
use crate::machine::Machine;
use crate::sched::Ns;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// Disk timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskConfig {
    /// Fixed per-request cost (command + average seek + rotation), ns.
    pub overhead_ns: Ns,
    /// Media transfer rate, bytes per second.
    pub bytes_per_sec: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            overhead_ns: 9_000_000,        // ~9 ms average positioning.
            bytes_per_sec: 5_000_000,      // ~5 MB/s media rate.
        }
    }
}

/// The result of a completed request.
#[derive(Debug)]
pub struct Completion {
    /// The id returned at submission.
    pub id: u64,
    /// Read data (reads only; `None` for writes).
    pub data: Option<Vec<u8>>,
    /// Whether the request succeeded (out-of-range requests fail).
    pub ok: bool,
}

/// The disk device.
pub struct Disk {
    machine: Weak<Machine>,
    config: DiskConfig,
    irq_line: u8,
    media: Mutex<Vec<u8>>,
    completed: Mutex<VecDeque<Completion>>,
    next_id: AtomicU64,
    busy_until: Mutex<Ns>,
}

impl Disk {
    /// Attaches a disk of `sectors` sectors on IRQ 14.
    pub fn new(machine: &Arc<Machine>, sectors: usize) -> Arc<Disk> {
        Self::with_config(machine, sectors, DiskConfig::default())
    }

    /// Attaches a disk with explicit timing.
    pub fn with_config(machine: &Arc<Machine>, sectors: usize, config: DiskConfig) -> Arc<Disk> {
        Arc::new(Disk {
            machine: Arc::downgrade(machine),
            config,
            irq_line: lines::IDE,
            media: Mutex::new(vec![0; sectors * SECTOR_SIZE]),
            completed: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            busy_until: Mutex::new(0),
        })
    }

    /// Number of sectors on the media.
    pub fn num_sectors(&self) -> u64 {
        (self.media.lock().len() / SECTOR_SIZE) as u64
    }

    /// The completion IRQ line.
    pub fn irq_line(&self) -> u8 {
        self.irq_line
    }

    /// Host-side helper: writes `data` onto the media immediately (no
    /// timing, no interrupt) — how test images are prepared.
    pub fn load_image(&self, start_sector: u64, data: &[u8]) {
        let mut media = self.media.lock();
        let off = start_sector as usize * SECTOR_SIZE;
        assert!(off + data.len() <= media.len(), "image beyond media");
        media[off..off + data.len()].copy_from_slice(data);
    }

    /// Host-side helper: reads the media directly (no timing).
    pub fn peek(&self, start_sector: u64, sectors: usize) -> Vec<u8> {
        let media = self.media.lock();
        let off = start_sector as usize * SECTOR_SIZE;
        media[off..off + sectors * SECTOR_SIZE].to_vec()
    }

    /// Submits a read of `count` sectors starting at `sector`.
    ///
    /// Returns the request id; a [`Completion`] with that id appears later
    /// and the completion IRQ fires.
    pub fn submit_read(self: &Arc<Self>, sector: u64, count: usize) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = count * SECTOR_SIZE;
        let fault = self.fault_verdict();
        let ok = self.in_range(sector, count) && !fault.error;
        let disk = Arc::clone(self);
        self.schedule(bytes, fault.extra_ns, move || {
            let data = ok.then(|| {
                let media = disk.media.lock();
                let off = sector as usize * SECTOR_SIZE;
                media[off..off + count * SECTOR_SIZE].to_vec()
            });
            disk.complete(Completion { id, ok, data });
        });
        id
    }

    /// Submits a write of `data` (a whole number of sectors) at `sector`.
    pub fn submit_write(self: &Arc<Self>, sector: u64, data: Vec<u8>) -> u64 {
        assert_eq!(data.len() % SECTOR_SIZE, 0, "partial-sector write");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let count = data.len() / SECTOR_SIZE;
        let fault = self.fault_verdict();
        let ok = self.in_range(sector, count) && !fault.error;
        let disk = Arc::clone(self);
        let bytes = data.len();
        self.schedule(bytes, fault.extra_ns, move || {
            if ok {
                let mut media = disk.media.lock();
                let off = sector as usize * SECTOR_SIZE;
                media[off..off + data.len()].copy_from_slice(&data);
            }
            disk.complete(Completion {
                id,
                ok,
                data: None,
            });
        });
        id
    }

    /// Drains the next completion, if any (driver, at interrupt level).
    pub fn take_completion(&self) -> Option<Completion> {
        self.completed.lock().pop_front()
    }

    fn in_range(&self, sector: u64, count: usize) -> bool {
        sector
            .checked_add(count as u64)
            .is_some_and(|end| end <= self.num_sectors())
    }

    /// Consults the machine's fault plan for one request: a transient
    /// media error (`Completion::ok == false`), a latency spike, both, or
    /// — almost always — neither.
    fn fault_verdict(&self) -> oskit_fault::DiskFault {
        self.machine
            .upgrade()
            .map(|m| m.faults().disk_fault())
            .unwrap_or_default()
    }

    fn schedule(&self, bytes: usize, extra_ns: Ns, work: impl FnOnce() + Send + 'static) {
        let Some(machine) = self.machine.upgrade() else {
            return;
        };
        let duration = self.config.overhead_ns
            + extra_ns
            + bytes as u64 * 1_000_000_000 / self.config.bytes_per_sec.max(1);
        let done = {
            let mut busy = self.busy_until.lock();
            let start = (*busy).max(machine.cpu_now());
            *busy = start + duration;
            *busy
        };
        machine.sim.at_abs(done, work);
    }

    fn complete(&self, c: Completion) {
        self.completed.lock().push_back(c);
        if let Some(machine) = self.machine.upgrade() {
            machine.observe(machine.sim.now());
            // A lost completion interrupt strands the completion in the
            // queue; the driver must poll for it or ride the next edge.
            if machine.faults().irq_lost(self.irq_line) {
                return;
            }
            machine.irq.raise(self.irq_line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{SleepRecord, Sim};

    fn setup() -> (Arc<Sim>, Arc<Machine>, Arc<Disk>) {
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let d = Disk::new(&m, 128);
        (sim, m, d)
    }

    /// Runs `body` on a sim process thread and waits for it.
    fn in_sim(sim: &Arc<Sim>, body: impl FnOnce() + Send + 'static) {
        sim.spawn("test", body);
        sim.run();
    }

    #[test]
    fn write_then_read_round_trips() {
        let (sim, m, d) = setup();
        let done = Arc::new(Mutex::new(None));
        let d2 = Arc::clone(&d);
        let done2 = Arc::clone(&done);
        let rec = Arc::new(SleepRecord::new());
        let (rec2, m2) = (Arc::clone(&rec), Arc::clone(&m));
        m.irq.install(d.irq_line(), move |_| {
            while let Some(c) = d2.take_completion() {
                if let Some(data) = c.data {
                    *done2.lock() = Some(data);
                    rec2.signal(&m2.sim);
                }
            }
        });
        m.irq.enable();
        let (s2, d3) = (Arc::clone(&sim), Arc::clone(&d));
        in_sim(&sim, move || {
            d3.submit_write(5, vec![0x5A; SECTOR_SIZE]);
            d3.submit_read(5, 1);
            rec.wait(&s2);
        });
        assert_eq!(done.lock().take().unwrap(), vec![0x5A; SECTOR_SIZE]);
    }

    #[test]
    fn requests_complete_in_order() {
        let (sim, m, d) = setup();
        let order = Arc::new(Mutex::new(Vec::new()));
        let rec = Arc::new(SleepRecord::new());
        let (d2, o2, rec2, m2) = (
            Arc::clone(&d),
            Arc::clone(&order),
            Arc::clone(&rec),
            Arc::clone(&m),
        );
        m.irq.install(d.irq_line(), move |_| {
            while let Some(c) = d2.take_completion() {
                let mut o = o2.lock();
                o.push(c.id);
                if o.len() == 3 {
                    rec2.signal(&m2.sim);
                }
            }
        });
        m.irq.enable();
        let (s2, d3) = (Arc::clone(&sim), Arc::clone(&d));
        let ids = Arc::new(Mutex::new(Vec::new()));
        let ids2 = Arc::clone(&ids);
        in_sim(&sim, move || {
            let a = d3.submit_read(0, 1);
            let b = d3.submit_read(64, 8);
            let c = d3.submit_read(2, 1);
            *ids2.lock() = vec![a, b, c];
            rec.wait(&s2);
        });
        assert_eq!(*order.lock(), *ids.lock());
    }

    #[test]
    fn out_of_range_fails_cleanly() {
        let (sim, m, d) = setup();
        let status = Arc::new(Mutex::new(None));
        let (d2, s2c) = (Arc::clone(&d), Arc::clone(&status));
        let rec = Arc::new(SleepRecord::new());
        let (rec2, m2) = (Arc::clone(&rec), Arc::clone(&m));
        m.irq.install(d.irq_line(), move |_| {
            while let Some(c) = d2.take_completion() {
                *s2c.lock() = Some(c.ok);
                rec2.signal(&m2.sim);
            }
        });
        m.irq.enable();
        let (s2, d3) = (Arc::clone(&sim), Arc::clone(&d));
        in_sim(&sim, move || {
            d3.submit_read(1000, 1); // Disk has 128 sectors.
            rec.wait(&s2);
        });
        assert_eq!(status.lock().take(), Some(false));
    }

    #[test]
    fn timing_includes_overhead_and_transfer() {
        let cfg = DiskConfig::default();
        let sim = Sim::new();
        let m = Machine::new(&sim, "m", 4096);
        let d = Disk::with_config(&m, 128, cfg);
        let when = Arc::new(Mutex::new(0u64));
        let (d2, w2, m2) = (Arc::clone(&d), Arc::clone(&when), Arc::clone(&m));
        let rec = Arc::new(SleepRecord::new());
        let rec2 = Arc::clone(&rec);
        m.irq.install(d.irq_line(), move |_| {
            while d2.take_completion().is_some() {
                *w2.lock() = m2.sim.now();
                rec2.signal(&m2.sim);
            }
        });
        m.irq.enable();
        let (s2, d3) = (Arc::clone(&sim), Arc::clone(&d));
        sim.spawn("t", move || {
            d3.submit_read(0, 8); // 4096 bytes.
            rec.wait(&s2);
        });
        sim.run();
        let expected = cfg.overhead_ns + 4096 * 1_000_000_000 / cfg.bytes_per_sec;
        assert_eq!(*when.lock(), expected);
    }

    #[test]
    fn load_image_and_peek_bypass_timing() {
        let (_sim, _m, d) = setup();
        d.load_image(3, &[7u8; SECTOR_SIZE * 2]);
        assert_eq!(d.peek(3, 2), vec![7u8; SECTOR_SIZE * 2]);
        assert_eq!(d.peek(5, 1), vec![0u8; SECTOR_SIZE]);
    }
}
