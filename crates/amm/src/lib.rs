//! `oskit-amm` — the Address Map Manager (paper §3.3).
//!
//! "The address map manager, or AMM, is designed to manage address spaces
//! that don't necessarily map directly to physical or virtual memory; it
//! provides similar support for other aspects of OS implementation such as
//! the management of processes' address spaces, paging partitions, free
//! block maps, or IPC namespaces."
//!
//! An [`Amm`] tiles a numeric range `[base, limit)` with *entries*, each
//! carrying client-defined attribute flags.  Entries split and join
//! automatically as attributes change, so the map is always minimal: no
//! two adjacent entries have equal flags.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Conventional attribute flags (clients may define their own space;
/// these match the C AMM's predefined values in spirit).
pub mod flags {
    /// The range is unused and allocatable.
    pub const FREE: u32 = 0;
    /// The range is allocated.
    pub const ALLOCATED: u32 = 1;
    /// The range is reserved and must never be handed out.
    pub const RESERVED: u32 = 2;
}

/// One attribute range, as yielded by [`Amm::iter`] and lookups.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AmmEntry {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
    /// Attribute flags.
    pub flags: u32,
}

/// An attribute map over `[base, limit)`: the OSKit's `amm_t`.
#[derive(Debug, Clone)]
pub struct Amm {
    base: u64,
    limit: u64,
    /// start → (end, flags); entries tile `[base, limit)` exactly and
    /// adjacent entries always have different flags.
    entries: BTreeMap<u64, (u64, u32)>,
}

impl Amm {
    /// Creates a map covering `[base, limit)` with every address holding
    /// `initial_flags` (`amm_init`).
    ///
    /// # Panics
    ///
    /// Panics if `base >= limit`.
    pub fn new(base: u64, limit: u64, initial_flags: u32) -> Amm {
        assert!(base < limit, "amm: empty range");
        let mut entries = BTreeMap::new();
        entries.insert(base, (limit, initial_flags));
        Amm {
            base,
            limit,
            entries,
        }
    }

    /// The covered range.
    pub fn range(&self) -> (u64, u64) {
        (self.base, self.limit)
    }

    /// Returns the entry containing `addr` (`amm_find_addr`).
    pub fn entry_at(&self, addr: u64) -> Option<AmmEntry> {
        if addr < self.base || addr >= self.limit {
            return None;
        }
        let (&start, &(end, flags)) = self.entries.range(..=addr).next_back()?;
        debug_assert!(addr < end);
        Some(AmmEntry { start, end, flags })
    }

    /// Sets the flags of `[addr, addr+size)` (`amm_modify`), splitting and
    /// joining entries as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the map.
    pub fn modify(&mut self, addr: u64, size: u64, flags: u32) {
        if size == 0 {
            return;
        }
        let end = addr.checked_add(size).expect("amm: range wraps");
        assert!(
            addr >= self.base && end <= self.limit,
            "amm: modify {addr:#x}+{size:#x} outside [{:#x},{:#x})",
            self.base,
            self.limit
        );
        // Split the entry containing `addr` at `addr`.
        self.split_at(addr);
        // Split the entry containing `end` at `end`.
        self.split_at(end);
        // Replace every entry inside [addr, end).
        let inside: Vec<u64> = self
            .entries
            .range(addr..end)
            .map(|(&s, _)| s)
            .collect();
        for s in inside {
            self.entries.remove(&s);
        }
        self.entries.insert(addr, (end, flags));
        // Re-join with neighbours of equal flags.
        self.join_around(addr);
        self.join_around(end);
    }

    /// Finds the lowest address `a >= lo` such that `[a, a+size)` fits in
    /// `[lo, hi)`, every byte has `flags_mask`-masked flags equal to
    /// `flags_value`, and `(a + align_ofs)` is `2^align_bits`-aligned
    /// (`amm_find_gen`).
    #[allow(clippy::too_many_arguments)]
    pub fn find_gen(
        &self,
        size: u64,
        flags_mask: u32,
        flags_value: u32,
        align_bits: u32,
        align_ofs: u64,
        lo: u64,
        hi: u64,
    ) -> Option<u64> {
        if size == 0 {
            return None;
        }
        let align = 1u64.checked_shl(align_bits)?;
        let lo = lo.max(self.base);
        let hi = hi.min(self.limit);
        let mut at = lo;
        while at < hi {
            let e = self.entry_at(at)?;
            if e.flags & flags_mask != flags_value {
                at = e.end;
                continue;
            }
            // Candidate inside this matching run; the run may span several
            // entries with different non-masked bits, so extend it.
            let run_start = at;
            let mut run_end = e.end;
            while run_end < hi {
                match self.entry_at(run_end) {
                    Some(n) if n.flags & flags_mask == flags_value => run_end = n.end,
                    _ => break,
                }
            }
            let run_end = run_end.min(hi);
            let rem = (run_start + align_ofs) % align;
            let cand = if rem == 0 {
                run_start
            } else {
                run_start + (align - rem)
            };
            if cand.checked_add(size).is_some_and(|ce| ce <= run_end) {
                return Some(cand);
            }
            at = run_end;
        }
        None
    }

    /// Convenience allocator: finds a `size`-byte run whose flags equal
    /// `from_flags` exactly and re-tags it `to_flags`
    /// (`amm_allocate`).
    pub fn allocate(&mut self, size: u64, from_flags: u32, to_flags: u32) -> Option<u64> {
        let a = self.find_gen(size, u32::MAX, from_flags, 0, 0, self.base, self.limit)?;
        self.modify(a, size, to_flags);
        Some(a)
    }

    /// Convenience deallocator: re-tags `[addr, addr+size)` as
    /// `free_flags` (`amm_deallocate`).
    pub fn deallocate(&mut self, addr: u64, size: u64, free_flags: u32) {
        self.modify(addr, size, free_flags);
    }

    /// Iterates the entries in address order (`amm_iterate`).
    pub fn iter(&self) -> impl Iterator<Item = AmmEntry> + '_ {
        self.entries.iter().map(|(&start, &(end, flags))| AmmEntry {
            start,
            end,
            flags,
        })
    }

    /// Total bytes whose `mask`-masked flags equal `value`.
    pub fn bytes_matching(&self, mask: u32, value: u32) -> u64 {
        self.iter()
            .filter(|e| e.flags & mask == value)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Splits the entry containing `at` so that an entry boundary falls at
    /// `at` (no-op at existing boundaries or the map edges).
    fn split_at(&mut self, at: u64) {
        if at <= self.base || at >= self.limit || self.entries.contains_key(&at) {
            return;
        }
        let (&start, &(end, flags)) = self
            .entries
            .range(..at)
            .next_back()
            .expect("amm: tiling hole");
        debug_assert!(at < end);
        self.entries.insert(start, (at, flags));
        self.entries.insert(at, (end, flags));
    }

    /// Joins the entries meeting at boundary `at` if their flags match.
    fn join_around(&mut self, at: u64) {
        if at <= self.base || at >= self.limit {
            return;
        }
        let Some(&(r_end, r_flags)) = self.entries.get(&at) else {
            return;
        };
        let (&l_start, &(l_end, l_flags)) =
            self.entries.range(..at).next_back().expect("amm: no left");
        if l_end == at && l_flags == r_flags {
            self.entries.remove(&at);
            self.entries.insert(l_start, (r_end, l_flags));
        }
    }

    /// Checks the structural invariants (used by tests): exact tiling and
    /// maximal joining.
    pub fn check_invariants(&self) {
        let mut expect = self.base;
        let mut prev_flags: Option<u32> = None;
        for e in self.iter() {
            assert_eq!(e.start, expect, "amm: tiling hole at {expect:#x}");
            assert!(e.end > e.start, "amm: empty entry at {:#x}", e.start);
            if let Some(pf) = prev_flags {
                assert_ne!(pf, e.flags, "amm: unjoined entries at {:#x}", e.start);
            }
            prev_flags = Some(e.flags);
            expect = e.end;
        }
        assert_eq!(expect, self.limit, "amm: map ends early at {expect:#x}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flags::{ALLOCATED, FREE, RESERVED};

    #[test]
    fn new_map_is_one_entry() {
        let amm = Amm::new(0, 0x1000, FREE);
        let all: Vec<_> = amm.iter().collect();
        assert_eq!(
            all,
            vec![AmmEntry {
                start: 0,
                end: 0x1000,
                flags: FREE
            }]
        );
        amm.check_invariants();
    }

    #[test]
    fn modify_splits_in_the_middle() {
        let mut amm = Amm::new(0, 0x1000, FREE);
        amm.modify(0x400, 0x200, ALLOCATED);
        let all: Vec<_> = amm.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].start, 0x400);
        assert_eq!(all[1].end, 0x600);
        assert_eq!(all[1].flags, ALLOCATED);
        amm.check_invariants();
    }

    #[test]
    fn modify_back_rejoins() {
        let mut amm = Amm::new(0, 0x1000, FREE);
        amm.modify(0x400, 0x200, ALLOCATED);
        amm.modify(0x400, 0x200, FREE);
        assert_eq!(amm.iter().count(), 1);
        amm.check_invariants();
    }

    #[test]
    fn modify_spanning_entries_replaces_them() {
        let mut amm = Amm::new(0, 0x1000, FREE);
        amm.modify(0x100, 0x100, ALLOCATED);
        amm.modify(0x300, 0x100, RESERVED);
        // One modify spanning both earlier entries and their gaps.
        amm.modify(0x80, 0x400, ALLOCATED);
        let e = amm.entry_at(0x200).unwrap();
        assert_eq!((e.start, e.end, e.flags), (0x80, 0x480, ALLOCATED));
        amm.check_invariants();
    }

    #[test]
    fn allocate_and_deallocate() {
        let mut amm = Amm::new(0x1000, 0x10000, FREE);
        let a = amm.allocate(0x800, FREE, ALLOCATED).unwrap();
        assert_eq!(a, 0x1000);
        let b = amm.allocate(0x800, FREE, ALLOCATED).unwrap();
        assert_eq!(b, 0x1800);
        amm.deallocate(a, 0x800, FREE);
        // First-fit reuses the hole.
        let c = amm.allocate(0x400, FREE, ALLOCATED).unwrap();
        assert_eq!(c, 0x1000);
        amm.check_invariants();
    }

    #[test]
    fn find_gen_alignment_and_bounds() {
        let mut amm = Amm::new(0, 0x100000, FREE);
        amm.modify(0, 0x1234, RESERVED);
        let a = amm
            .find_gen(0x1000, u32::MAX, FREE, 12, 0, 0, u64::MAX)
            .unwrap();
        assert_eq!(a % 0x1000, 0);
        assert!(a >= 0x1234);
        // Bounded search that cannot fit fails.
        assert_eq!(
            amm.find_gen(0x1000, u32::MAX, FREE, 0, 0, 0x500, 0x1000),
            None
        );
    }

    #[test]
    fn find_gen_matches_masked_flags_across_entries() {
        // Two adjacent entries share a mask bit but differ elsewhere: a
        // masked search must treat them as one run.
        let mut amm = Amm::new(0, 0x1000, 0b01);
        amm.modify(0x800, 0x800, 0b11);
        let a = amm.find_gen(0xC00, 0b01, 0b01, 0, 0, 0, u64::MAX);
        assert_eq!(a, Some(0));
    }

    #[test]
    fn entry_at_boundaries() {
        let mut amm = Amm::new(0x100, 0x200, FREE);
        amm.modify(0x180, 0x40, ALLOCATED);
        assert_eq!(amm.entry_at(0xFF), None);
        assert_eq!(amm.entry_at(0x200), None);
        assert_eq!(amm.entry_at(0x100).unwrap().flags, FREE);
        assert_eq!(amm.entry_at(0x180).unwrap().flags, ALLOCATED);
        assert_eq!(amm.entry_at(0x1BF).unwrap().flags, ALLOCATED);
        assert_eq!(amm.entry_at(0x1C0).unwrap().flags, FREE);
    }

    #[test]
    fn bytes_matching_accounts() {
        let mut amm = Amm::new(0, 0x1000, FREE);
        amm.modify(0x100, 0x100, ALLOCATED);
        amm.modify(0x800, 0x200, ALLOCATED);
        assert_eq!(amm.bytes_matching(u32::MAX, ALLOCATED), 0x300);
        assert_eq!(amm.bytes_matching(u32::MAX, FREE), 0x1000 - 0x300);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn modify_outside_panics() {
        let mut amm = Amm::new(0x100, 0x200, FREE);
        amm.modify(0, 0x50, ALLOCATED);
    }

    #[test]
    fn process_address_space_scenario() {
        // The paper's motivating use: a process address space with text,
        // data, stack and a guard page.
        const PROT_R: u32 = 4;
        const PROT_W: u32 = 8;
        const PROT_X: u32 = 16;
        let mut asp = Amm::new(0x0000_1000, 0xC000_0000, flags::FREE);
        asp.modify(0x0804_8000, 0x10000, flags::ALLOCATED | PROT_R | PROT_X); // text
        asp.modify(0x0805_8000, 0x8000, flags::ALLOCATED | PROT_R | PROT_W); // data
        asp.modify(0xBFFF_0000, 0xF000, flags::ALLOCATED | PROT_R | PROT_W); // stack
        asp.modify(0xBFFE_F000, 0x1000, flags::RESERVED); // guard
        asp.check_invariants();
        // mmap-like: find a free region for a 64 KB mapping above the data
        // segment.
        let a = asp
            .find_gen(0x10000, u32::MAX, flags::FREE, 12, 0, 0x0806_0000, u64::MAX)
            .unwrap();
        assert_eq!(a, 0x0806_0000);
        // Fault check: is the guard page writable?
        let g = asp.entry_at(0xBFFE_F800).unwrap();
        assert_eq!(g.flags & PROT_W, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random modifies keep the map tiled and maximally joined,
            /// and flags always read back what was last written.
            #[test]
            fn random_modifies_keep_invariants(
                ops in proptest::collection::vec(
                    (0u64..0x10000, 1u64..0x4000, 0u32..4), 1..60)
            ) {
                let mut amm = Amm::new(0, 0x20000, 0);
                let mut shadow = vec![0u32; 0x20000 / 0x100];
                for (addr, size, f) in ops {
                    let addr = addr & !0xFF; // Work in 256-byte quanta so
                    let size = (size & !0xFF).max(0x100); // the shadow is small.
                    let size = size.min(0x20000 - addr);
                    if size == 0 { continue; }
                    amm.modify(addr, size, f);
                    for i in (addr / 0x100)..((addr + size) / 0x100) {
                        shadow[i as usize] = f;
                    }
                    amm.check_invariants();
                }
                for (i, &f) in shadow.iter().enumerate() {
                    let addr = i as u64 * 0x100;
                    prop_assert_eq!(amm.entry_at(addr).unwrap().flags, f);
                }
            }

            /// allocate never hands out overlapping or mis-tagged ranges.
            #[test]
            fn allocate_is_exclusive(sizes in proptest::collection::vec(1u64..0x1000, 1..40)) {
                let mut amm = Amm::new(0, 0x20000, flags::FREE);
                let mut got: Vec<(u64, u64)> = Vec::new();
                for size in sizes {
                    if let Some(a) = amm.allocate(size, flags::FREE, flags::ALLOCATED) {
                        for &(s, l) in &got {
                            prop_assert!(a + size <= s || a >= s + l);
                        }
                        got.push((a, size));
                    }
                }
                let allocated: u64 = got.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(amm.bytes_matching(u32::MAX, flags::ALLOCATED), allocated);
            }
        }
    }
}
