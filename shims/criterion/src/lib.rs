//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal API-compatible subset: enough for the
//! `oskit-bench` benches to compile and produce useful wall-clock numbers
//! with `cargo bench`.  No statistics, plots, or baselines — each bench
//! reports the best observed iteration time over a few measured batches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The bench context handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples to take (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (output is already flushed; kept for compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier with a parameter, e.g. `read_with_copy/4096`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Drives one benchmark's timed iterations.
pub struct Bencher {
    samples: usize,
    best: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `f`, recording the best per-iteration duration over a few
    /// measured batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up.
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            self.iters_done += 1;
            if dt < best {
                best = dt;
            }
        }
        self.best = best;
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best: Duration::ZERO,
        iters_done: 0,
    };
    f(&mut b);
    println!(
        "bench {:50} best {:>12.3?}  ({} iters)",
        id, b.best, b.iters_done
    );
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        assert!(ran >= 3);
    }
}
