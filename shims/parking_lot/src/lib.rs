//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal API-compatible subset over `std::sync`.  Only the
//! surface the OSKit crates actually use is provided: [`Mutex`] (whose
//! `lock` does not return a poisoning `Result`), [`MutexGuard`], and
//! [`Condvar`] (whose `wait` takes `&mut MutexGuard`).
//!
//! Poisoning is deliberately ignored, matching `parking_lot` semantics: a
//! panic while holding the lock leaves the data accessible.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.  Never panics on
    /// poisoning: the data of a panicked holder remains accessible.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take it while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
