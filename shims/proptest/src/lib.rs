//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal API-compatible subset.  It keeps the property-test
//! *sources* unchanged: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prop_oneof!`], ranges / tuples / [`collection::vec`] as strategies,
//! [`any`], `prop_map`, and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: cases derive from a fixed seed (per test name and
//!   case index), so failures reproduce exactly; `PROPTEST_CASES` still
//!   overrides the case count.
//! * **No shrinking**: a failing case reports its inputs' case number but
//!   is not minimized.

use std::fmt;

/// Deterministic splitmix64 generator driving all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds deterministically from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// The error carried out of a failing `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How a generated value is produced.  The shim's `Strategy` is eager:
/// `sample` directly yields a value (no value tree, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy always yielding clones of one value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as u64).wrapping_sub(s as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                s.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// One boxed alternative of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniform choice among boxed alternatives (behind [`prop_oneof!`]).
pub struct Union<V> {
    /// The sampled alternatives.
    pub arms: Vec<UnionArm<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "empty prop_oneof");
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Collection strategies (proptest's `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element` (proptest's `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the effective case count (`PROPTEST_CASES` overrides).
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests.  Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )+
    ) => {
        $( $crate::proptest!(@one ($cfg) $(#[$meta])* fn $name ( $( $arg in $strat ),+ ) $body ); )+
    };
    (
        $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )+
    ) => {
        $( $crate::proptest!(@one ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name ( $( $arg in $strat ),+ ) $body ); )+
    };
    (@one ($cfg:expr)
        $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ ) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::effective_cases(&$cfg);
            for case in 0..u64::from(cases) {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)), case);
                let ( $( $arg, )+ ) = ( $( $crate::Strategy::sample(&($strat), &mut rng), )+ );
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest property '{}' failed at case {}/{}: {}",
                        stringify!($name), case, cases, e.0
                    );
                }
            }
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// A uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union {
            arms: vec![
                $( {
                    let s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                        $crate::Strategy::sample(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
                } ),+
            ],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(42);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(any::<u8>(), 0..10),
            (a, b) in (0u32..5, 0u32..5),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(99u32),
        ]) {
            prop_assert!(x == 99u32 || (x % 2u32 == 0u32 && x < 20u32));
        }
    }
}
